//! Criterion: cold vs. warm-cache routing on a hot-spot workload across
//! network sizes (1k / 4k / 16k regions), plus the greedy next-hop
//! primitive — the per-message costs behind the O(2√N) hop figure.
//!
//! *Cold* is [`routing::route_uncached`]: the original per-query
//! `HashSet` + `Vec` implementation, no state carried between queries.
//! *Warm* is a greedy [`Router::route`] through one persistent
//! [`Router`], so repeated queries toward the hot cell resolve their
//! next hops from the epoch-validated cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geogrid_bench::common::build_network;
use geogrid_bench::ExperimentConfig;
use geogrid_core::builder::Mode;
use geogrid_core::routing::{self, RouteOptions, Router};
use geogrid_core::{RegionId, Topology};
use geogrid_geometry::Point;
use std::hint::black_box;

/// Network sizes swept (basic mode: regions == nodes).
const SIZES: [usize; 3] = [1_024, 4_096, 16_384];

/// Fixed hot points in the hot-spot square.
const HOT_POINTS: u64 = 64;

/// Hot-spot query stream (paper §4): 80% of queries target one of
/// [`HOT_POINTS`] fixed places inside the 2-mile square (46, 46)–(48, 48)
/// — location queries name concrete destinations, so the hot stream
/// repeats exact coordinates — and the rest probe uniform points. Weyl
/// sequences keep the stream deterministic and allocation-free.
fn hotspot_target(i: u64) -> Point {
    if i.is_multiple_of(5) {
        let u = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
        let v = (i.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 11) as f64 / (1u64 << 53) as f64;
        Point::new(u * 64.0, v * 64.0)
    } else {
        let k = i.wrapping_mul(0xD1B5_4A32_D192_ED03) % HOT_POINTS + 1;
        let u = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
        let v = (k.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 11) as f64 / (1u64 << 53) as f64;
        Point::new(46.0 + 2.0 * u, 46.0 + 2.0 * v)
    }
}

fn bench_routing(c: &mut Criterion) {
    let config = ExperimentConfig::default();
    let networks: Vec<Topology> = SIZES
        .iter()
        .map(|&n| build_network(&config, Mode::Basic, n, 0))
        .collect();

    let mut group = c.benchmark_group("route_cold");
    for topo in &networks {
        let sources: Vec<RegionId> = topo.region_ids().collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(topo.region_count()),
            topo,
            |b, topo| {
                let mut i = 0u64;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    let from = sources[(i as usize).wrapping_mul(7) % sources.len()];
                    black_box(routing::route_uncached(topo, from, hotspot_target(i)).unwrap())
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("route_warm");
    for topo in &networks {
        let sources: Vec<RegionId> = topo.region_ids().collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(topo.region_count()),
            topo,
            |b, topo| {
                let mut router = Router::new();
                let greedy = RouteOptions::greedy();
                // Warm the next-hop cache over one pass of the stream.
                for i in 1..=4_096u64 {
                    let from = sources[(i as usize).wrapping_mul(7) % sources.len()];
                    router
                        .route(topo, from, hotspot_target(i), &greedy)
                        .unwrap();
                }
                let mut i = 0u64;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    let from = sources[(i as usize).wrapping_mul(7) % sources.len()];
                    black_box(
                        router
                            .route(topo, from, hotspot_target(i), &greedy)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();

    let topo = &networks[1]; // 4,096 regions
    let from = topo.first_region().unwrap();
    c.bench_function("next_hop_4096", |b| {
        let visited = std::collections::HashSet::new();
        b.iter(|| {
            black_box(routing::next_hop(
                topo,
                from,
                Point::new(63.0, 63.0),
                &visited,
            ))
        })
    });
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
