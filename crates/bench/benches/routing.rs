//! Criterion: greedy next-hop decision and full routes across network
//! sizes — the per-message cost behind the O(2√N) hop figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geogrid_bench::common::build_network;
use geogrid_bench::ExperimentConfig;
use geogrid_core::builder::Mode;
use geogrid_core::routing;
use geogrid_geometry::Point;
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let config = ExperimentConfig::default();
    let mut group = c.benchmark_group("route");
    for &n in &[256usize, 1_024, 4_096] {
        let topo = build_network(&config, Mode::Basic, n, 0);
        let from = topo.first_region().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                // Spread targets deterministically over the plane.
                i = i.wrapping_add(1);
                let x =
                    (i.wrapping_mul(0x9E3779B97F4A7C15) >> 11) as f64 / (1u64 << 53) as f64 * 64.0;
                let y =
                    (i.wrapping_mul(0xD1B54A32D192ED03) >> 11) as f64 / (1u64 << 53) as f64 * 64.0;
                black_box(routing::route(&topo, from, Point::new(x, y)).unwrap())
            })
        });
    }
    group.finish();

    let topo = build_network(&config, Mode::Basic, 4_096, 0);
    let from = topo.first_region().unwrap();
    c.bench_function("next_hop_4096", |b| {
        let visited = std::collections::HashSet::new();
        b.iter(|| {
            black_box(routing::next_hop(
                &topo,
                from,
                Point::new(63.0, 63.0),
                &visited,
            ))
        })
    });
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
