//! Criterion: point location through the grid index (`Topology::locate`)
//! versus the linear scan it replaced (`Topology::locate_scan`), across
//! network sizes. The scan is O(regions); the index is O(1) amortized —
//! the gap should widen roughly linearly with the region count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geogrid_bench::common::build_network;
use geogrid_bench::ExperimentConfig;
use geogrid_core::builder::Mode;
use geogrid_geometry::Point;
use std::hint::black_box;

/// Deterministic probe spread over the 64x64 plane.
fn probe(i: u64) -> Point {
    let x = (i.wrapping_mul(0x9E3779B97F4A7C15) >> 11) as f64 / (1u64 << 53) as f64 * 64.0;
    let y = (i.wrapping_mul(0xD1B54A32D192ED03) >> 11) as f64 / (1u64 << 53) as f64 * 64.0;
    Point::new(x, y)
}

fn bench_locate(c: &mut Criterion) {
    let config = ExperimentConfig::default();
    let sizes: Vec<usize> = (6..=14).map(|e| 1usize << e).collect();

    let mut grid = c.benchmark_group("locate_grid");
    for &n in &sizes {
        let topo = build_network(&config, Mode::Basic, n, 0);
        grid.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(topo.locate(probe(i)).unwrap())
            })
        });
    }
    grid.finish();

    let mut scan = c.benchmark_group("locate_scan");
    for &n in &sizes {
        let topo = build_network(&config, Mode::Basic, n, 0);
        scan.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(topo.locate_scan(probe(i)).unwrap())
            })
        });
    }
    scan.finish();
}

criterion_group!(benches, bench_locate);
criterion_main!(benches);
