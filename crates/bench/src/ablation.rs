//! Ablations for the design choices DESIGN.md calls out.
//!
//! All on a 2,000-node network under the standard hot-spot field:
//!
//! * **variant ladder** — basic / +dual / +dual+local-only adaptation /
//!   +dual+full adaptation: how much each layer contributes;
//! * **TTL of the remote search** — 2/3/5;
//! * **trigger ratio** — 1.1 / √2 / 2.0: adaptation eagerness vs churn;
//! * **routing-load weight α** — 0 (paper figures) vs 0.5 with a sampled
//!   query mix: does balancing change when transit load counts;
//! * **capacity heterogeneity** — Gnutella profile vs homogeneous.

use geogrid_core::balance::{AdaptationEngine, BalanceConfig};
use geogrid_core::builder::{Mode, NetworkBuilder};
use geogrid_core::load::LoadMap;
use geogrid_metrics::{gini, table::Table, RunningStats};
use geogrid_workload::CapacityProfile;

use crate::common::{build_network, ExperimentConfig};

/// Network size for all ablations.
pub const NODES: usize = 2_000;

/// Rounds of adaptation per run.
pub const ROUNDS: usize = 25;

/// One ablation row: setting name → averaged stats.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Human-readable setting.
    pub setting: String,
    /// Trial-averaged std-dev of the node workload index.
    pub std_dev: f64,
    /// Trial-averaged mean.
    pub mean: f64,
    /// Trial-averaged Gini coefficient.
    pub gini: f64,
    /// Trial-averaged adaptation count until convergence.
    pub adaptations: f64,
}

struct Acc {
    std: RunningStats,
    mean: RunningStats,
    gini: RunningStats,
    ops: RunningStats,
}

impl Acc {
    fn new() -> Self {
        Self {
            std: RunningStats::new(),
            mean: RunningStats::new(),
            gini: RunningStats::new(),
            ops: RunningStats::new(),
        }
    }

    fn finish(self, setting: impl Into<String>) -> AblationRow {
        AblationRow {
            setting: setting.into(),
            std_dev: self.std.mean(),
            mean: self.mean.mean(),
            gini: self.gini.mean(),
            adaptations: self.ops.mean(),
        }
    }
}

fn record(acc: &mut Acc, topo: &geogrid_core::Topology, loads: &LoadMap, ops: usize) {
    let s = loads.summary(topo);
    acc.std.push(s.std_dev());
    acc.mean.push(s.mean());
    acc.gini.push(gini(loads.node_indexes(topo).into_values()));
    acc.ops.push(ops as f64);
}

/// Runs the whole ablation grid.
pub fn run(config: &ExperimentConfig) -> Vec<AblationRow> {
    run_sized(config, NODES)
}

/// Runs with a custom network size (tests use small ones).
pub fn run_sized(config: &ExperimentConfig, nodes: usize) -> Vec<AblationRow> {
    let mut accs: Vec<(String, Acc)> = Vec::new();
    let mut push = |name: &str| {
        accs.push((name.to_string(), Acc::new()));
        accs.len() - 1
    };
    let i_basic = push("basic");
    let i_dual = push("dual");
    let i_local = push("dual+adapt(local-only)");
    let i_full = push("dual+adapt(full)");
    let i_ttl2 = push("dual+adapt(ttl=2)");
    let i_ttl5 = push("dual+adapt(ttl=5)");
    let i_eager = push("dual+adapt(trigger=1.1)");
    let i_lazy = push("dual+adapt(trigger=2.0)");
    let i_alpha = push("dual+adapt(alpha=0.5,routing)");
    let i_homog = push("homogeneous+adapt");

    for trial in 0..config.trials {
        eprintln!("ablation: trial {}...", trial + 1);
        let mut rng = config.rng(1000, trial as u64);
        let (field, grid) = config.field_and_grid(&mut rng);

        // Variant ladder.
        let topo = build_network(config, Mode::Basic, nodes, trial as u64);
        record(
            &mut accs[i_basic].1,
            &topo,
            &LoadMap::from_grid(&topo, &grid),
            0,
        );
        let dual = build_network(config, Mode::DualPeer, nodes, trial as u64);
        record(
            &mut accs[i_dual].1,
            &dual,
            &LoadMap::from_grid(&dual, &grid),
            0,
        );

        let mut run_variant = |idx: usize, balance: BalanceConfig| {
            let mut topo = dual.clone();
            let mut loads = LoadMap::from_grid(&topo, &grid);
            let engine = AdaptationEngine::new(balance);
            let stats = engine.run(&mut topo, &grid, &mut loads, ROUNDS);
            let ops: usize = stats.iter().map(|r| r.adaptations).sum();
            record(&mut accs[idx].1, &topo, &loads, ops);
        };
        run_variant(
            i_local,
            BalanceConfig {
                local_only: true,
                ..BalanceConfig::default()
            },
        );
        run_variant(i_full, BalanceConfig::default());
        run_variant(
            i_ttl2,
            BalanceConfig {
                search_ttl: 2,
                ..BalanceConfig::default()
            },
        );
        run_variant(
            i_ttl5,
            BalanceConfig {
                search_ttl: 5,
                ..BalanceConfig::default()
            },
        );
        run_variant(
            i_eager,
            BalanceConfig {
                trigger_ratio: 1.1,
                ..BalanceConfig::default()
            },
        );
        run_variant(
            i_lazy,
            BalanceConfig {
                trigger_ratio: 2.0,
                ..BalanceConfig::default()
            },
        );

        // Routing-load-aware balancing (α = 0.5, 2,000 sampled queries).
        {
            let mut topo = dual.clone();
            let mut loads = LoadMap::with_routing(&topo, &grid, &field, &mut rng, 2_000, 0.8, 0.5);
            let engine = AdaptationEngine::default();
            let stats = engine.run(&mut topo, &grid, &mut loads, ROUNDS);
            let ops: usize = stats.iter().map(|r| r.adaptations).sum();
            record(&mut accs[i_alpha].1, &topo, &loads, ops);
        }

        // Homogeneous capacities: adaptation has no capacity slack to
        // exploit — only merges/splits help.
        {
            let mut net = NetworkBuilder::new(config.space(), config.seed ^ trial as u64)
                .mode(Mode::DualPeer)
                .capacities(CapacityProfile::homogeneous(100.0))
                .build(nodes);
            let mut loads = LoadMap::from_grid(net.topology(), &grid);
            let engine = AdaptationEngine::default();
            let stats = engine.run(net.topology_mut(), &grid, &mut loads, ROUNDS);
            let ops: usize = stats.iter().map(|r| r.adaptations).sum();
            record(&mut accs[i_homog].1, net.topology(), &loads, ops);
        }
    }

    let rows: Vec<AblationRow> = accs
        .into_iter()
        .map(|(name, acc)| acc.finish(name))
        .collect();
    let mut table = Table::new(["setting", "index_std", "index_mean", "gini", "adaptations"]);
    for r in &rows {
        table.row([
            r.setting.clone(),
            format!("{:.6e}", r.std_dev),
            format!("{:.6e}", r.mean),
            format!("{:.4}", r.gini),
            format!("{:.1}", r.adaptations),
        ]);
    }
    config.emit("ablation", &table);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_improves_monotonically_enough() {
        let config = ExperimentConfig {
            trials: 2,
            out_dir: std::env::temp_dir().join("geogrid_ablation_test"),
            ..ExperimentConfig::default()
        };
        let rows = run_sized(&config, 300);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.setting == name)
                .unwrap_or_else(|| panic!("row {name}"))
                .std_dev
        };
        let basic = get("basic");
        let full = get("dual+adapt(full)");
        assert!(full < basic, "full {full} >= basic {basic}");
        // Every adaptation variant actually did work.
        for name in [
            "dual+adapt(local-only)",
            "dual+adapt(ttl=2)",
            "dual+adapt(ttl=5)",
            "dual+adapt(trigger=1.1)",
            "dual+adapt(trigger=2.0)",
        ] {
            let row = rows.iter().find(|r| r.setting == name).unwrap();
            assert!(row.adaptations > 0.0, "{name} never adapted");
            assert!(row.std_dev <= basic, "{name} worse than basic");
        }
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }
}
