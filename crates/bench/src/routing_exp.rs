//! §2.2 routing-cost claim: "routing between a pair of randomly chosen
//! regions has the overhead of O(2√N)" hops.
//!
//! This experiment measures greedy-routing hop counts over growing
//! networks and reports the measured mean next to the `2√N` bound.

use std::collections::HashMap;

use geogrid_core::builder::Mode;
use geogrid_core::load::sample_routing_pairs;
use geogrid_core::routing::{RouteOptions, Router};
use geogrid_core::RegionId;
use geogrid_metrics::{gini, table::Table, Summary};

use crate::common::{build_network, ExperimentConfig};
use crate::par::par_trials;

/// Populations swept.
pub const POPULATIONS: [usize; 7] = [256, 512, 1_024, 2_048, 4_096, 8_192, 16_384];

/// Routed pairs sampled per population.
pub const SAMPLES: usize = 1_000;

/// One population's hop statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HopRow {
    /// Number of regions (basic network: == nodes).
    pub nodes: usize,
    /// Hop-count summary over the sampled pairs.
    pub hops: Summary,
    /// The paper's bound, `2√N`.
    pub bound: f64,
}

/// Runs one population.
pub fn run_population(config: &ExperimentConfig, nodes: usize) -> HopRow {
    let topo = build_network(config, Mode::Basic, nodes, 0);
    let mut rng = config.rng(22, nodes as u64);
    let pairs = sample_routing_pairs(&topo, &mut rng, SAMPLES);
    // One router for the whole sweep: the 1,000 sampled routes share
    // buffers and the epoch-validated next-hop cache.
    let mut router = Router::new();
    let hops = Summary::from_values(pairs.iter().map(|(from, target)| {
        router
            .route(&topo, *from, *target, &RouteOptions::greedy())
            .expect("route succeeds on valid topology");
        router.hop_count() as f64
    }));
    HopRow {
        nodes,
        hops,
        bound: 2.0 * (nodes as f64).sqrt(),
    }
}

/// Runs the sweep and emits `routing_hops.csv`.
pub fn run(config: &ExperimentConfig) -> Vec<HopRow> {
    run_with_populations(config, &POPULATIONS)
}

/// Runs the sweep over custom populations.
pub fn run_with_populations(config: &ExperimentConfig, populations: &[usize]) -> Vec<HopRow> {
    eprintln!("routing: populations {populations:?}...");
    // Parallel across populations (each seeds its own RNG by size); rows
    // come back in population order, so the table matches the serial run.
    let rows: Vec<HopRow> = par_trials(populations.len(), |i| {
        run_population(config, populations[i])
    });
    let mut table = Table::new([
        "nodes",
        "mean_hops",
        "p50_hops",
        "p99_hops",
        "max_hops",
        "bound_2_sqrt_n",
        "mean_over_bound",
    ]);
    for row in &rows {
        table.row([
            row.nodes.to_string(),
            format!("{:.2}", row.hops.mean()),
            format!("{:.1}", row.hops.median()),
            format!("{:.1}", row.hops.percentile(99.0)),
            format!("{:.0}", row.hops.max()),
            format!("{:.2}", row.bound),
            format!("{:.3}", row.hops.mean() / row.bound),
        ]);
    }
    config.emit("routing_hops", &table);
    spread_experiment(config);
    rows
}

/// Transit-load spread: greedy routing always burns the same corridors;
/// the paper's "randomization of routing entries" spreads the forwarding
/// work. Measures Gini of per-region transit counts and the mean hop cost
/// paid for the spreading.
pub fn spread_experiment(config: &ExperimentConfig) {
    let n = 1_024;
    let topo = build_network(config, Mode::Basic, n, 1);
    let mut rng = config.rng(33, 0);
    let pairs = sample_routing_pairs(&topo, &mut rng, 2_000);
    let mut table = Table::new(["strategy", "transit_gini", "mean_hops"]);
    let mut router = Router::new();
    for (label, slack) in [("greedy", None), ("randomized_25pct", Some(0.25))] {
        let mut transits: HashMap<RegionId, f64> = HashMap::new();
        let mut hops = 0usize;
        for (from, target) in &pairs {
            match slack {
                None => router.route(&topo, *from, *target, &RouteOptions::greedy()),
                Some(s) => router.route_with_rng(
                    &topo,
                    *from,
                    *target,
                    &RouteOptions::randomized(s),
                    &mut rng,
                ),
            }
            .expect("routable");
            hops += router.hop_count();
            let trace = router.hops();
            for rid in &trace[..trace.len().saturating_sub(1)] {
                *transits.entry(*rid).or_default() += 1.0;
            }
        }
        // Include zero-transit regions in the spread measure.
        let mut counts: Vec<f64> = topo
            .region_ids()
            .map(|r| transits.get(&r).copied().unwrap_or(0.0))
            .collect();
        counts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        table.row([
            label.to_string(),
            format!("{:.4}", gini(counts)),
            format!("{:.2}", hops as f64 / pairs.len() as f64),
        ]);
    }
    config.emit("routing_spread", &table);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_stay_within_paper_bound_and_scale() {
        let config = ExperimentConfig {
            out_dir: std::env::temp_dir().join("geogrid_routing_test"),
            ..ExperimentConfig::default()
        };
        let rows = run_with_populations(&config, &[64, 256]);
        for row in &rows {
            assert!(
                row.hops.mean() < row.bound,
                "N={}: mean {} exceeds 2sqrt(N) {}",
                row.nodes,
                row.hops.mean(),
                row.bound
            );
        }
        // Quadrupling the network roughly doubles the mean hops (sqrt
        // scaling; allow generous slack).
        let ratio = rows[1].hops.mean() / rows[0].hops.mean();
        assert!(
            (1.3..=3.0).contains(&ratio),
            "scaling ratio {ratio} not sqrt-like"
        );
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }
}
