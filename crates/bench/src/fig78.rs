//! Figures 7 and 8: convergence of the mean (Figure 7) and standard
//! deviation (Figure 8) of the workload index, plotted by **round of
//! adaptation**, for three scenarios on a 2,000-node dual-peer network:
//!
//! * **static hot spots** — spots never move while adaptation runs;
//! * **moving hot spots** — spots advance 4–10 migration steps per round
//!   (faster than adaptation);
//! * **no adaptation** — the moving-spot baseline with adaptation off.
//!
//! The paper's observation: both adaptation scenarios converge in the
//! first few rounds, after which moving spots are absorbed gracefully.
//!
//! Each trial's [`build_network`] routes every join through the
//! builder's reusable `RouteScratch` (`geogrid_core::routing`), so the
//! 2,000-node networks here are built without per-join routing
//! allocations.

use geogrid_core::balance::{AdaptationEngine, BalanceConfig};
use geogrid_core::builder::Mode;
use geogrid_core::load::LoadMap;
use geogrid_metrics::{table::Table, RunningStats};
use geogrid_workload::WorkloadGrid;
use rand::Rng;

use crate::common::{build_network, ExperimentConfig};
use crate::par::par_trials;

/// Network size (paper: 2 × 10³ peers).
pub const NODES: usize = 2_000;

/// Rounds plotted (paper: 25).
pub const ROUNDS: usize = 25;

/// Per-round series for the three scenarios.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Mean workload index after each round, static spots.
    pub static_mean: Vec<f64>,
    /// Std-dev after each round, static spots.
    pub static_std: Vec<f64>,
    /// Mean after each round, moving spots.
    pub moving_mean: Vec<f64>,
    /// Std-dev after each round, moving spots.
    pub moving_std: Vec<f64>,
    /// Mean after each round, no adaptation (moving spots).
    pub none_mean: Vec<f64>,
    /// Std-dev after each round, no adaptation (moving spots).
    pub none_std: Vec<f64>,
}

/// Runs one trial of all three scenarios with a common starting network.
pub fn run_trial(config: &ExperimentConfig, nodes: usize, trial: u64) -> Series {
    let mut series = Series::default();
    let engine = AdaptationEngine::new(BalanceConfig::default());

    // Static scenario.
    {
        let mut rng = config.rng(78, trial);
        let (field, grid) = {
            let f =
                geogrid_workload::HotSpotField::random(&mut rng, config.space(), config.hotspots);
            let g = WorkloadGrid::from_field(config.space(), config.cell_size, &f);
            (f, g)
        };
        let _ = field;
        let mut topo = build_network(config, Mode::DualPeer, nodes, trial);
        let mut loads = LoadMap::from_grid(&topo, &grid);
        for _ in 0..ROUNDS {
            engine.run_round(&mut topo, &grid, &mut loads);
            let s = loads.summary(&topo);
            series.static_mean.push(s.mean());
            series.static_std.push(s.std_dev());
        }
    }

    // Moving scenario (+ the no-adaptation baseline sharing the same
    // hot-spot trajectory).
    {
        let mut rng = config.rng(78, trial);
        let mut field =
            geogrid_workload::HotSpotField::random(&mut rng, config.space(), config.hotspots);
        let mut grid = WorkloadGrid::from_field(config.space(), config.cell_size, &field);
        let mut topo = build_network(config, Mode::DualPeer, nodes, trial);
        let baseline = topo.clone();
        for _ in 0..ROUNDS {
            // Spots move 4-10 steps before the round of adaptation ends.
            let steps = rng.random_range(4..=10);
            field.advance_epochs(&mut rng, config.space(), steps);
            grid.fill(&field);
            let mut loads = LoadMap::from_grid(&topo, &grid);
            engine.run_round(&mut topo, &grid, &mut loads);
            let s = loads.summary(&topo);
            series.moving_mean.push(s.mean());
            series.moving_std.push(s.std_dev());
            let s = LoadMap::from_grid(&baseline, &grid).summary(&baseline);
            series.none_mean.push(s.mean());
            series.none_std.push(s.std_dev());
        }
        baseline.validate().expect("baseline untouched");
    }
    series
}

/// Runs all trials, averages per round, and emits
/// `fig7_mean_by_round.csv` / `fig8_std_by_round.csv`.
pub fn run(config: &ExperimentConfig) -> Series {
    run_sized(config, NODES)
}

/// Runs with a custom network size (tests use small ones).
pub fn run_sized(config: &ExperimentConfig, nodes: usize) -> Series {
    eprintln!("fig7/8: {} trials...", config.trials);
    // Parallel across trials; per-round averaging below folds in trial
    // order, so the output is identical to the serial loop.
    let trials: Vec<Series> = par_trials(config.trials, |t| run_trial(config, nodes, t as u64));
    let avg = |pick: fn(&Series) -> &Vec<f64>| -> Vec<f64> {
        (0..ROUNDS)
            .map(|round| {
                let stats: RunningStats = trials.iter().map(|s| pick(s)[round]).collect();
                stats.mean()
            })
            .collect()
    };
    let series = Series {
        static_mean: avg(|s| &s.static_mean),
        static_std: avg(|s| &s.static_std),
        moving_mean: avg(|s| &s.moving_mean),
        moving_std: avg(|s| &s.moving_std),
        none_mean: avg(|s| &s.none_mean),
        none_std: avg(|s| &s.none_std),
    };

    let mut fig7 = Table::new(["round", "static_hotspot", "moving_hotspot", "no_adaptation"]);
    let mut fig8 = Table::new(["round", "static_hotspot", "moving_hotspot", "no_adaptation"]);
    for round in 0..ROUNDS {
        fig7.row([
            (round + 1).to_string(),
            format!("{:.6e}", series.static_mean[round]),
            format!("{:.6e}", series.moving_mean[round]),
            format!("{:.6e}", series.none_mean[round]),
        ]);
        fig8.row([
            (round + 1).to_string(),
            format!("{:.6e}", series.static_std[round]),
            format!("{:.6e}", series.moving_std[round]),
            format!("{:.6e}", series.none_std[round]),
        ]);
    }
    config.emit("fig7_mean_by_round", &fig7);
    config.emit("fig8_std_by_round", &fig8);
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_beats_no_adaptation_and_converges() {
        let config = ExperimentConfig {
            trials: 2,
            out_dir: std::env::temp_dir().join("geogrid_fig78_test"),
            ..ExperimentConfig::default()
        };
        let s = run_sized(&config, 300);
        // Static scenario: later rounds no worse than round 1 (converged).
        let first = s.static_std[0];
        let last = *s.static_std.last().unwrap();
        assert!(
            last <= first * 1.05,
            "static never converged: {first} -> {last}"
        );
        // Adaptation under moving spots beats the untouched baseline at
        // the end.
        assert!(
            s.moving_std.last().unwrap() < s.none_std.last().unwrap(),
            "moving {} vs none {}",
            s.moving_std.last().unwrap(),
            s.none_std.last().unwrap()
        );
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }
}
