//! Experiment harness for the GeoGrid reproduction.
//!
//! One module per paper artifact; each experiment prints the rows/series
//! the paper reports and writes the same table as CSV under the chosen
//! output directory. The `repro` binary dispatches to them:
//!
//! ```text
//! cargo run -p geogrid-bench --release --bin repro -- all
//! cargo run -p geogrid-bench --release --bin repro -- fig5 --trials 100
//! ```
//!
//! | experiment | paper artifact |
//! |---|---|
//! | [`fig23`] | Figures 2 & 3 — region size / load distributions |
//! | [`fig56`] | Figures 5 & 6 — std-dev and mean of workload index vs N |
//! | [`fig78`] | Figures 7 & 8 — convergence by adaptation round |
//! | [`fig910`] | Figures 9 & 10 — convergence by adaptation count |
//! | [`routing_exp`] | §2.2 — O(2√N) greedy-routing hop counts |
//! | [`mech`] | Figure 4 — the eight adaptation vignettes |
//! | [`ablation`] | design-choice ablations (trigger, TTL, α, variants) |
//! | [`failover`] | §2.3 claim — dual peer's fault resilience, quantified |
//!
//! Two further binaries support protocol work: `simulate` runs a full
//! message-level deployment (joins, heartbeats, adaptation, optional
//! crash storm) and reports traffic statistics, coverage, and any
//! ownership forks; `debug_validate` and `debug_fork` are maintenance
//! diagnostics that sweep builder validity and hunt the first ownership
//! fork under load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod common;
pub mod failover;
pub mod fig23;
pub mod fig56;
pub mod fig78;
pub mod fig910;
pub mod mech;
pub mod par;
pub mod routing_exp;

pub use common::ExperimentConfig;
