//! Figures 9 and 10: convergence of the standard deviation (Figure 9)
//! and mean (Figure 10) of the workload index, plotted by **cumulative
//! number of adaptations** (0–500) on a 2,000-node dual-peer network.
//!
//! Under moving hot spots the paper sees "a few surges on the dashed
//! lines" — spots relocating mid-convergence — before the system settles.
//!
//! Each trial's [`build_network`] routes every join through the
//! builder's reusable `RouteScratch` (`geogrid_core::routing`); the
//! per-operation adaptation loop then mutates geometry freely — each
//! split/merge bumps the topology epoch, so any cached next hops are
//! dropped rather than served stale.

use geogrid_core::balance::{AdaptationEngine, BalanceConfig};
use geogrid_core::builder::Mode;
use geogrid_core::load::LoadMap;
use geogrid_metrics::{table::Table, RunningStats};
use geogrid_workload::WorkloadGrid;
use rand::Rng;

use crate::common::{build_network, ExperimentConfig};
use crate::par::par_trials;

/// Network size (paper: 2 × 10³ peers).
pub const NODES: usize = 2_000;

/// Adaptation operations plotted (paper: 500).
pub const OPS: usize = 500;

/// Per-operation series.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// (mean, std) after each adaptation, static hot spots.
    pub static_points: Vec<(f64, f64)>,
    /// (mean, std) after each adaptation, moving hot spots.
    pub moving_points: Vec<(f64, f64)>,
}

fn pad_to(points: &mut Vec<(f64, f64)>, n: usize) {
    // Once the network converges no further adaptations fire; the curve
    // holds its final value (matches how the paper's lines flatten).
    if let Some(&last) = points.last() {
        while points.len() < n {
            points.push(last);
        }
    }
    points.truncate(n);
}

/// Runs one trial of both scenarios.
pub fn run_trial(config: &ExperimentConfig, nodes: usize, trial: u64) -> Series {
    let engine = AdaptationEngine::new(BalanceConfig::default());
    let mut series = Series::default();

    // Static: record after every operation until idle or OPS.
    {
        let mut rng = config.rng(910, trial);
        let (_, grid) = config.field_and_grid(&mut rng);
        let mut topo = build_network(config, Mode::DualPeer, nodes, trial);
        let mut loads = LoadMap::from_grid(&topo, &grid);
        let summaries = engine.run_per_op(&mut topo, &grid, &mut loads, OPS);
        series.static_points = summaries.iter().map(|s| (s.mean(), s.std_dev())).collect();
        if series.static_points.is_empty() {
            let s = loads.summary(&topo);
            series.static_points.push((s.mean(), s.std_dev()));
        }
        pad_to(&mut series.static_points, OPS);
    }

    // Moving: spots advance 4-10 steps per adaptation round; operations
    // are recorded one at a time.
    {
        let mut rng = config.rng(910, trial);
        let mut field =
            geogrid_workload::HotSpotField::random(&mut rng, config.space(), config.hotspots);
        let mut grid = WorkloadGrid::from_field(config.space(), config.cell_size, &field);
        let mut topo = build_network(config, Mode::DualPeer, nodes, trial);
        let mut points = Vec::new();
        let mut idle_rounds = 0;
        while points.len() < OPS && idle_rounds < 3 {
            let steps = rng.random_range(4..=10);
            field.advance_epochs(&mut rng, config.space(), steps);
            grid.fill(&field);
            let mut loads = LoadMap::from_grid(&topo, &grid);
            let budget = OPS - points.len();
            let summaries = engine.run_per_op(&mut topo, &grid, &mut loads, budget);
            if summaries.is_empty() {
                idle_rounds += 1;
                let s = loads.summary(&topo);
                points.push((s.mean(), s.std_dev()));
            } else {
                idle_rounds = 0;
                points.extend(summaries.iter().map(|s| (s.mean(), s.std_dev())));
            }
        }
        series.moving_points = points;
        pad_to(&mut series.moving_points, OPS);
    }
    series
}

/// Runs all trials, averages per operation index, and emits
/// `fig9_std_by_op.csv` / `fig10_mean_by_op.csv`.
pub fn run(config: &ExperimentConfig) -> Series {
    run_sized(config, NODES)
}

/// Runs with a custom network size (tests use small ones).
pub fn run_sized(config: &ExperimentConfig, nodes: usize) -> Series {
    eprintln!("fig9/10: {} trials...", config.trials);
    // Parallel across trials; per-op averaging below folds in trial order,
    // so the output is identical to the serial loop.
    let trials: Vec<Series> = par_trials(config.trials, |t| run_trial(config, nodes, t as u64));
    let avg = |pick: fn(&Series) -> &Vec<(f64, f64)>, which: usize| -> Vec<f64> {
        (0..OPS)
            .map(|op| {
                let stats: RunningStats = trials
                    .iter()
                    .map(|s| {
                        let p = pick(s)[op];
                        if which == 0 {
                            p.0
                        } else {
                            p.1
                        }
                    })
                    .collect();
                stats.mean()
            })
            .collect()
    };
    let static_mean = avg(|s| &s.static_points, 0);
    let static_std = avg(|s| &s.static_points, 1);
    let moving_mean = avg(|s| &s.moving_points, 0);
    let moving_std = avg(|s| &s.moving_points, 1);

    let mut fig9 = Table::new(["adaptations", "static_hotspot", "moving_hotspot"]);
    let mut fig10 = Table::new(["adaptations", "static_hotspot", "moving_hotspot"]);
    // Sample every 10th point like the paper's marker spacing.
    for op in (0..OPS).step_by(10) {
        fig9.row([
            (op + 1).to_string(),
            format!("{:.6e}", static_std[op]),
            format!("{:.6e}", moving_std[op]),
        ]);
        fig10.row([
            (op + 1).to_string(),
            format!("{:.6e}", static_mean[op]),
            format!("{:.6e}", moving_mean[op]),
        ]);
    }
    config.emit("fig9_std_by_op", &fig9);
    config.emit("fig10_mean_by_op", &fig10);

    Series {
        static_points: static_mean.into_iter().zip(static_std).collect(),
        moving_points: moving_mean.into_iter().zip(moving_std).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_op_series_have_full_length_and_static_converges() {
        let config = ExperimentConfig {
            trials: 1,
            out_dir: std::env::temp_dir().join("geogrid_fig910_test"),
            ..ExperimentConfig::default()
        };
        let s = run_sized(&config, 300);
        assert_eq!(s.static_points.len(), OPS);
        assert_eq!(s.moving_points.len(), OPS);
        // Static curve is non-increasing in the large: the end is no
        // worse than the start.
        let first_std = s.static_points[0].1;
        let last_std = s.static_points[OPS - 1].1;
        assert!(
            last_std <= first_std * 1.05,
            "static per-op never improved: {first_std} -> {last_std}"
        );
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }
}
