//! Deterministic fork-join parallelism for the experiment harness.
//!
//! The experiments are embarrassingly parallel across trials: every unit
//! of work is a pure function of its index (each trial derives its own RNG
//! via [`crate::ExperimentConfig::rng`] and builds its own network), so
//! computing the units on a thread pool and collecting the results **in
//! index order** yields bit-identical aggregates — and byte-identical
//! CSVs — to the serial loop. All folding into summary statistics happens
//! on the caller's thread, in trial order, after the parallel section.
//!
//! `rayon` would express the same shape (`par_iter().map().collect()`
//! preserves order); the build environment has no registry access (see
//! `vendor/README.md`), so this uses `std::thread::scope` with a shared
//! work counter instead — a dozen lines for the one primitive the harness
//! needs.
//!
//! Setting `GEOGRID_SERIAL=1` forces the serial path; it is used to verify
//! the byte-identical-output property and to time the serial baseline.
//! `GEOGRID_WORKERS=N` overrides the detected parallelism (useful to force
//! the threaded path on constrained machines, or to throttle it).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for `n` units: `GEOGRID_WORKERS` if set, else the
/// machine's parallelism; capped at `n`; 1 when `GEOGRID_SERIAL` is set
/// (to any value).
fn worker_count(n: usize) -> usize {
    if std::env::var_os("GEOGRID_SERIAL").is_some() {
        return 1;
    }
    if let Some(w) = std::env::var("GEOGRID_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return w.max(1).min(n);
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
}

/// Computes `f(0), f(1), …, f(n-1)` on a scoped thread pool and returns
/// the results in index order.
///
/// `f` must be a pure function of its index for the results to equal the
/// serial `(0..n).map(f).collect()` — which is exactly how every caller
/// uses it (per-trial seeds). Work is handed out dynamically (shared
/// counter), so uneven trial durations don't idle workers.
///
/// # Panics
///
/// Propagates a panic from any worker once all workers have stopped.
pub fn par_trials<U: Send, F: Fn(usize) -> U + Sync>(n: usize, f: F) -> Vec<U> {
    run(worker_count(n), n, f)
}

fn run<U: Send, F: Fn(usize) -> U + Sync>(workers: usize, n: usize, f: F) -> Vec<U> {
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                *slots[i].lock().expect("unshared slot lock") = Some(v);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("unshared slot lock")
                .expect("every index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        // Force the threaded path even on single-core machines.
        let out = run(4, 100, |i| i * i);
        let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn matches_serial_for_stateful_per_index_work() {
        use rand::{Rng, SeedableRng};
        let work = |i: usize| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(i as u64);
            (0..50)
                .map(|_| rng.random::<u64>())
                .fold(0u64, u64::wrapping_add)
        };
        assert_eq!(run(4, 32, work), (0..32).map(work).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_units_is_fine() {
        assert_eq!(run(16, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn zero_and_one_unit_edge_cases() {
        assert_eq!(par_trials(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_trials(1, |i| i + 7), vec![7]);
    }
}
