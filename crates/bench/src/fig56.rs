//! Figures 5 and 6: standard deviation (Figure 5) and mean (Figure 6) of
//! the workload index versus network size, for three protocol variants —
//! basic GeoGrid, GeoGrid + dual peer, and GeoGrid + dual peer + load
//! balance adaptation.
//!
//! The paper's populations range from 10³ to 1.6 × 10⁴ with 100 random
//! networks per setting; the headline observation is that dual peer +
//! adaptation beats basic "by one order of magnitude in both metrics".
//!
//! The thousands of routed join requests each trial's [`build_network`]
//! issues go through the builder's reusable `RouteScratch`
//! (`geogrid_core::routing`): no per-join allocation, and next hops come
//! from the epoch-validated route cache.

use geogrid_core::builder::Mode;
use geogrid_core::load::LoadMap;
use geogrid_metrics::{table::Table, RunningStats};

use crate::common::{adapt_until_stable, build_network, ExperimentConfig};
use crate::par::par_trials;

/// The paper's population settings.
pub const POPULATIONS: [usize; 5] = [1_000, 2_000, 4_000, 8_000, 16_000];

/// Maximum adaptation rounds per trial (the paper converges "in the first
/// a few rounds").
pub const MAX_ROUNDS: usize = 25;

/// Aggregates for one (population, variant) cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cell {
    /// Trial-averaged std-dev of the workload index.
    pub std_dev: f64,
    /// Trial-averaged mean of the workload index.
    pub mean: f64,
    /// Trial-averaged max of the workload index.
    pub max: f64,
}

/// One population row: basic / dual / dual+adaptation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Number of nodes.
    pub nodes: usize,
    /// Basic GeoGrid.
    pub basic: Cell,
    /// GeoGrid + dual peer.
    pub dual: Cell,
    /// GeoGrid + dual peer + adaptation.
    pub adapted: Cell,
}

fn aggregate(values: &[(f64, f64, f64)]) -> Cell {
    let std: RunningStats = values.iter().map(|v| v.0).collect();
    let mean: RunningStats = values.iter().map(|v| v.1).collect();
    let max: RunningStats = values.iter().map(|v| v.2).collect();
    Cell {
        std_dev: std.mean(),
        mean: mean.mean(),
        max: max.mean(),
    }
}

/// Runs one population setting over all trials.
///
/// Trials run in parallel; each is a pure function of its index (its RNG
/// and network are seeded by trial number), and results are folded in
/// trial order, so the output is identical to the serial loop.
pub fn run_population(config: &ExperimentConfig, nodes: usize) -> Row {
    let samples = par_trials(config.trials, |trial| {
        let mut rng = config.rng(56, trial as u64);
        let (_, grid) = config.field_and_grid(&mut rng);

        let topo_basic = build_network(config, Mode::Basic, nodes, trial as u64);
        let s = LoadMap::from_grid(&topo_basic, &grid).summary(&topo_basic);
        let basic = (s.std_dev(), s.mean(), s.max());

        let mut topo_dual = build_network(config, Mode::DualPeer, nodes, trial as u64);
        let s = LoadMap::from_grid(&topo_dual, &grid).summary(&topo_dual);
        let dual = (s.std_dev(), s.mean(), s.max());

        let loads = adapt_until_stable(&mut topo_dual, &grid, MAX_ROUNDS);
        let s = loads.summary(&topo_dual);
        (basic, dual, (s.std_dev(), s.mean(), s.max()))
    });
    let basic: Vec<_> = samples.iter().map(|s| s.0).collect();
    let dual: Vec<_> = samples.iter().map(|s| s.1).collect();
    let adapted: Vec<_> = samples.iter().map(|s| s.2).collect();
    Row {
        nodes,
        basic: aggregate(&basic),
        dual: aggregate(&dual),
        adapted: aggregate(&adapted),
    }
}

/// Runs the full sweep and emits `fig5_stddev.csv` / `fig6_mean.csv`.
pub fn run(config: &ExperimentConfig) -> Vec<Row> {
    run_with_populations(config, &POPULATIONS)
}

/// Runs the sweep over custom populations (tests use small ones).
pub fn run_with_populations(config: &ExperimentConfig, populations: &[usize]) -> Vec<Row> {
    let rows: Vec<Row> = populations
        .iter()
        .map(|&n| {
            eprintln!("fig5/6: population {n} ({} trials)...", config.trials);
            run_population(config, n)
        })
        .collect();

    let mut fig5 = Table::new(["nodes", "basic", "dual_peer", "dual_peer_adaptation"]);
    let mut fig6 = Table::new(["nodes", "basic", "dual_peer", "dual_peer_adaptation"]);
    let mut maxes = Table::new(["nodes", "basic", "dual_peer", "dual_peer_adaptation"]);
    for row in &rows {
        fig5.row([
            row.nodes.to_string(),
            format!("{:.6e}", row.basic.std_dev),
            format!("{:.6e}", row.dual.std_dev),
            format!("{:.6e}", row.adapted.std_dev),
        ]);
        fig6.row([
            row.nodes.to_string(),
            format!("{:.6e}", row.basic.mean),
            format!("{:.6e}", row.dual.mean),
            format!("{:.6e}", row.adapted.mean),
        ]);
        maxes.row([
            row.nodes.to_string(),
            format!("{:.6e}", row.basic.max),
            format!("{:.6e}", row.dual.max),
            format!("{:.6e}", row.adapted.max),
        ]);
    }
    config.emit("fig5_stddev", &fig5);
    config.emit("fig6_mean", &fig6);
    config.emit("fig5_6_max", &maxes);
    for row in &rows {
        let ratio = row.basic.std_dev / row.adapted.std_dev.max(f64::MIN_POSITIVE);
        println!(
            "N={:>6}: basic/adapted std-dev ratio = {ratio:.1}x",
            row.nodes
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_order_as_in_paper() {
        let config = ExperimentConfig {
            trials: 3,
            out_dir: std::env::temp_dir().join("geogrid_fig56_test"),
            ..ExperimentConfig::default()
        };
        let rows = run_with_populations(&config, &[400]);
        let row = rows[0];
        // Basic is the worst; adaptation improves on dual peer.
        assert!(
            row.basic.std_dev > row.adapted.std_dev,
            "basic {} <= adapted {}",
            row.basic.std_dev,
            row.adapted.std_dev
        );
        assert!(row.dual.std_dev >= row.adapted.std_dev);
        assert!(row.basic.mean > row.adapted.mean);
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }
}
