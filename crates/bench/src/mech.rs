//! Figure 4: the eight load-balance adaptation vignettes.
//!
//! Each scenario reconstructs the textbook situation of Figure 4 — a hot
//! quadrant with capacities like the ones the paper prints in the
//! regions' corners — applies exactly one mechanism (asserting the
//! engine's cost ordering selects that mechanism), and reports the
//! overloaded region's workload index before and after. Every mechanism
//! must strictly reduce it.

use geogrid_core::balance::{
    plan_for_region, AdaptationEngine, AdaptationPlan, BalanceConfig, Mechanism,
};
use geogrid_core::load::LoadMap;
use geogrid_core::{RegionId, Topology};
use geogrid_geometry::{Point, Space};
use geogrid_metrics::table::Table;
use geogrid_workload::{HotSpot, HotSpotField, WorkloadGrid};

use crate::common::ExperimentConfig;
use crate::par::par_trials;

/// Outcome of one vignette.
#[derive(Debug, Clone, PartialEq)]
pub struct Vignette {
    /// The mechanism exercised.
    pub mechanism: Mechanism,
    /// Overloaded region's index before the adaptation.
    pub before: f64,
    /// Overloaded region's index after (same region id).
    pub after: f64,
}

/// Four quadrants with the given primary capacities and a hot spot at
/// `spot` (radius 10, the paper's maximum).
struct Stage {
    topo: Topology,
    grid: WorkloadGrid,
    quads: [RegionId; 4],
}

fn stage_at(caps: [f64; 4], spot: Point) -> Stage {
    let space = Space::paper_evaluation();
    let mut topo = Topology::new(space);
    let centers = [
        Point::new(16.0, 16.0),
        Point::new(48.0, 16.0),
        Point::new(16.0, 48.0),
        Point::new(48.0, 48.0),
    ];
    let n0 = topo.register_node(centers[0], caps[0]);
    let r0 = topo.bootstrap(n0).expect("fresh");
    let n2 = topo.register_node(centers[2], caps[2]);
    let top = topo.split_region(r0, n0, n2).expect("split");
    let n1 = topo.register_node(centers[1], caps[1]);
    let se = topo.split_region(r0, n0, n1).expect("split");
    let n3 = topo.register_node(centers[3], caps[3]);
    let ne = topo.split_region(top, n2, n3).expect("split");
    let field = HotSpotField::new(vec![HotSpot::new(spot, 10.0)]);
    let grid = WorkloadGrid::from_field(space, 0.5, &field);
    Stage {
        topo,
        grid,
        quads: [r0, se, top, ne],
    }
}

/// A hot spot fully contained in the south-west quadrant.
fn stage(caps: [f64; 4]) -> Stage {
    stage_at(caps, Point::new(16.0, 16.0))
}

fn add_secondary(stage: &mut Stage, quad: usize, capacity: f64) {
    let p = Point::new(
        16.0 + 32.0 * (quad % 2) as f64 + 1.0,
        16.0 + 32.0 * (quad / 2) as f64 + 1.0,
    );
    let s = stage.topo.register_node(p, capacity);
    stage
        .topo
        .set_secondary(stage.quads[quad], s)
        .expect("half-full quad");
}

fn apply_expected(stage: &mut Stage, expect: Mechanism, config: &BalanceConfig) -> Vignette {
    let rid = stage.quads[0];
    let mut loads = LoadMap::from_grid(&stage.topo, &stage.grid);
    let before = loads.index_of(&stage.topo, rid);
    let plan: AdaptationPlan =
        plan_for_region(&stage.topo, &loads, config, rid).expect("a plan exists");
    assert_eq!(
        plan.mechanism, expect,
        "scenario for {expect:?} selected {:?}",
        plan.mechanism
    );
    let engine = AdaptationEngine::new(config.clone());
    engine
        .apply(&mut stage.topo, &stage.grid, &mut loads, &plan)
        .expect("plan applies");
    stage.topo.validate().expect("valid after adaptation");
    let after = loads.index_of(&stage.topo, rid);
    Vignette {
        mechanism: expect,
        before,
        after,
    }
}

/// Builds and applies vignette `i` (0 = (a) … 7 = (h)). Each vignette
/// constructs its own four-quadrant stage, so they are fully independent.
fn vignette(i: usize) -> Vignette {
    let config = BalanceConfig::default();
    let remote_config = BalanceConfig {
        search_ttl: 4,
        ..BalanceConfig::default()
    };
    match i {
        // (a) Steal Secondary Owner: weak hot primary (1), a neighbor
        // holds a strong secondary (100).
        0 => {
            let mut s = stage([1.0, 10.0, 10.0, 10.0]);
            add_secondary(&mut s, 1, 100.0);
            apply_expected(&mut s, Mechanism::StealSecondary, &config)
        }
        // (b) Switch Primary Owners: weak hot primary (1), strong idle
        // neighbor primary (100), no secondaries anywhere.
        1 => {
            let mut s = stage([1.0, 100.0, 10.0, 10.0]);
            apply_expected(&mut s, Mechanism::SwitchPrimaries, &config)
        }
        // (c) Merge with a Neighbor: the hot spot straddles the SW/SE
        // border so both halves carry (equal) load — a primary swap with
        // the strong SE owner gains nothing, but merging the two into one
        // region under the strong owner beats the average of their
        // indexes.
        2 => {
            let mut s = stage_at([1.0, 100.0, 1.0, 1.0], Point::new(32.0, 16.0));
            apply_expected(&mut s, Mechanism::MergeWithNeighbor, &config)
        }
        // (d) Split a Region: the hot quadrant is full with equal peers
        // (10/10, the paper's "same capacity" premise).
        3 => {
            let mut s = stage([10.0, 10.0, 10.0, 10.0]);
            add_secondary(&mut s, 0, 10.0);
            apply_expected(&mut s, Mechanism::SplitRegion, &config)
        }
        // (e) Switch Primary with Neighbor's Secondary: hot full region
        // with weak peers (1 primary, 0.5 secondary — too weak to split
        // between); every neighbor primary is equally weak (so (b) has no
        // candidate) but one neighbor holds a strong secondary (100).
        4 => {
            let mut s = stage([1.0, 1.0, 1.0, 1.0]);
            add_secondary(&mut s, 0, 0.5);
            add_secondary(&mut s, 1, 100.0);
            apply_expected(&mut s, Mechanism::SwitchPrimaryWithSecondary, &config)
        }
        // (f) Steal Remote Secondary: the overloaded region is half-full;
        // all primaries are equal (no local switch target) and the only
        // strong secondary sits in the diagonal quadrant — 2 hops away,
        // reachable only through the TTL search.
        5 => {
            let mut s = stage([1.0, 1.0, 1.0, 1.0]);
            add_secondary(&mut s, 3, 100.0);
            apply_expected(&mut s, Mechanism::StealRemoteSecondary, &remote_config)
        }
        // (g) Switch Primary with Remote Secondary: hot full region with
        // weak peers; the strong secondary is remote (diagonal).
        6 => {
            let mut s = stage([1.0, 1.0, 1.0, 1.0]);
            add_secondary(&mut s, 0, 0.5);
            add_secondary(&mut s, 3, 100.0);
            apply_expected(
                &mut s,
                Mechanism::SwitchPrimaryWithRemoteSecondary,
                &remote_config,
            )
        }
        // (h) Switch Primary with Remote Primary: hot full region with
        // weak peers; the only strong node is the diagonal *primary*; no
        // secondaries exist anywhere else.
        7 => {
            let mut s = stage([1.0, 1.0, 1.0, 100.0]);
            add_secondary(&mut s, 0, 0.5);
            apply_expected(
                &mut s,
                Mechanism::SwitchPrimaryWithRemotePrimary,
                &remote_config,
            )
        }
        _ => unreachable!("eight vignettes"),
    }
}

/// Builds and applies all eight vignettes (in parallel — each stages its
/// own private topology; results come back in (a)–(h) order).
pub fn run_all() -> Vec<Vignette> {
    par_trials(8, vignette)
}

/// Runs the vignettes and emits `fig4_mechanisms.csv`.
pub fn run(config: &ExperimentConfig) -> Vec<Vignette> {
    let vignettes = run_all();
    let mut table = Table::new(["mechanism", "index_before", "index_after", "improvement"]);
    for v in &vignettes {
        table.row([
            format!("({})", v.mechanism.letter()),
            format!("{:.6}", v.before),
            format!("{:.6}", v.after),
            format!("{:.1}x", v.before / v.after.max(f64::MIN_POSITIVE)),
        ]);
    }
    config.emit("fig4_mechanisms", &table);
    vignettes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mechanism_reduces_the_overloaded_index() {
        let vignettes = run_all();
        assert_eq!(vignettes.len(), 8);
        let letters: Vec<char> = vignettes.iter().map(|v| v.mechanism.letter()).collect();
        assert_eq!(letters, vec!['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h']);
        for v in &vignettes {
            assert!(
                v.after < v.before,
                "({}) did not improve: {} -> {}",
                v.mechanism.letter(),
                v.before,
                v.after
            );
        }
    }
}
