//! `simulate` — drive a full message-level GeoGrid deployment on the
//! deterministic simulator and report protocol traffic statistics.
//!
//! Where `repro` evaluates the algorithms on the topology model (fast,
//! 16k nodes), `simulate` runs the actual wire protocol: every join,
//! split, heartbeat, query, and adaptation is a simulated message. Useful
//! for protocol-cost questions ("how many messages does a join cost at
//! N=200?") and for profiling the engine.
//!
//! ```text
//! simulate [--nodes N] [--queries Q] [--seed S] [--basic] [--crash-pct P]
//! ```

use std::process::ExitCode;

use geogrid_core::engine::sim::SimHarness;
use geogrid_core::engine::{ClientEvent, EngineConfig, EngineMode, Input};
use geogrid_core::service::LocationQuery;
use geogrid_core::topology::Role;
use geogrid_core::NodeId;
use geogrid_geometry::{Point, Region, Space};
use geogrid_metrics::Summary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Args {
    nodes: usize,
    queries: usize,
    seed: u64,
    basic: bool,
    crash_pct: f64,
    no_balance: bool,
}

fn parse() -> Option<Args> {
    let mut args = Args {
        nodes: 100,
        queries: 500,
        seed: 2007,
        basic: false,
        crash_pct: 0.0,
        no_balance: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--basic" => args.basic = true,
            "--no-balance" => args.no_balance = true,
            _ => {
                let v = it.next()?;
                match flag.as_str() {
                    "--nodes" => args.nodes = v.parse().ok()?,
                    "--queries" => args.queries = v.parse().ok()?,
                    "--seed" => args.seed = v.parse().ok()?,
                    "--crash-pct" => args.crash_pct = v.parse().ok()?,
                    _ => return None,
                }
            }
        }
    }
    (args.nodes >= 1 && (0.0..1.0).contains(&args.crash_pct)).then_some(args)
}

fn main() -> ExitCode {
    let Some(args) = parse() else {
        eprintln!("usage: simulate [--nodes N] [--queries Q] [--seed S] [--basic] [--crash-pct P]");
        return ExitCode::FAILURE;
    };
    let mode = if args.basic {
        EngineMode::Basic
    } else {
        EngineMode::DualPeer
    };
    println!(
        "simulating {} nodes ({mode:?}), {} queries, seed {}",
        args.nodes, args.queries, args.seed
    );
    let space = Space::paper_evaluation();
    let mut h = SimHarness::new(
        space,
        EngineConfig {
            mode,
            balance_enabled: !args.no_balance,
            ..EngineConfig::default()
        },
        args.seed,
    );
    let mut rng = SmallRng::seed_from_u64(args.seed);
    let coord =
        |rng: &mut SmallRng| Point::new(rng.random_range(0.2..63.8), rng.random_range(0.2..63.8));
    let caps = [1.0, 10.0, 10.0, 100.0, 10.0, 1.0, 10.0, 100.0, 1000.0, 10.0];

    let t0 = std::time::Instant::now();
    h.bootstrap(coord(&mut rng), 10.0);
    for i in 1..args.nodes {
        h.join(coord(&mut rng), caps[i % caps.len()]);
        h.run_for(250);
    }
    h.settle();
    let join_stats = h.stats();
    println!(
        "overlay formed in {:.2}s wall: {} owners, {} messages ({:.1} per join)",
        t0.elapsed().as_secs_f64(),
        h.owner_count(),
        join_stats.delivered,
        join_stats.delivered as f64 / args.nodes as f64
    );

    // Optional crash storm.
    if args.crash_pct > 0.0 {
        let n_crash = (args.nodes as f64 * args.crash_pct).round() as usize;
        for i in 0..n_crash {
            h.crash(NodeId::new(1 + i as u64));
        }
        h.run_for(4_000);
        println!("crashed {n_crash} nodes; {} owners remain", h.owner_count());
    }

    // Query workload from random survivors.
    let before = h.stats().delivered;
    let asker = NodeId::new(0);
    for _ in 0..args.queries {
        let p = coord(&mut rng);
        h.inject(
            asker,
            Input::UserQuery {
                query: LocationQuery::new(Region::new(p.x - 0.5, p.y - 0.5, 1.0, 1.0), asker),
            },
        );
        h.run_for(60);
    }
    h.run_for(2_000);
    // Count distinct answered queries via the correlation ids.
    let mut ids = std::collections::HashSet::new();
    for e in h.events_of(asker) {
        if let ClientEvent::QueryResults { query_id, .. } = e {
            ids.insert(*query_id);
        }
    }
    let answered = ids.len();
    let query_traffic = h.stats().delivered - before;
    println!(
        "queries: {}/{} answered, {:.1} messages each (incl. heartbeats)",
        answered,
        args.queries,
        query_traffic as f64 / args.queries as f64
    );

    // Ownership statistics.
    let views = h.owner_views();
    let areas = Summary::from_values(
        views
            .iter()
            .filter(|(_, v)| v.role == Role::Primary)
            .map(|(_, v)| v.region.area()),
    );
    let neighbors = Summary::from_values(views.iter().map(|(_, v)| v.neighbors.len() as f64));
    let covered: f64 = views
        .iter()
        .filter(|(_, v)| v.role == Role::Primary)
        .map(|(_, v)| v.region.area())
        .sum();
    println!("space coverage: {:.1}%", covered / (64.0 * 64.0) * 100.0);
    // Report any overlapping primary pair (an ownership fork).
    let primaries: Vec<_> = views
        .iter()
        .filter(|(_, v)| v.role == Role::Primary)
        .collect();
    for (i, (ida, va)) in primaries.iter().enumerate() {
        for (idb, vb) in primaries.iter().skip(i + 1) {
            if va.region.intersects(&vb.region) {
                println!(
                    "OVERLAP: {ida} {} (peer {:?}) vs {idb} {} (peer {:?})",
                    va.region,
                    va.peer.map(|p| p.id()),
                    vb.region,
                    vb.peer.map(|p| p.id())
                );
            }
        }
    }
    println!(
        "primary regions: {} (area mean {:.2} / p99 {:.2}); neighbor lists mean {:.1} max {:.0}",
        areas.len(),
        areas.mean(),
        areas.percentile(99.0),
        neighbors.mean(),
        neighbors.max()
    );
    println!("final simulator stats: {}", h.stats());
    ExitCode::SUCCESS
}
