//! Machine-readable concurrent-routing baseline: routes/sec for N reader
//! threads routing lock-free over epoch-published topology snapshots
//! while a writer thread churns the live geometry, written to
//! `BENCH_routing_mt.json`.
//!
//! Regenerate with exactly one command (from the repo root):
//!
//! ```text
//! cargo run --release -p geogrid-bench --bin routing_mt_bench
//! ```
//!
//! The network size comes from `GEOGRID_MT_REGIONS` (default 65,536), the
//! swept thread counts from `GEOGRID_MT_THREADS` (comma-separated, default
//! `1,2,4,8`), and the per-trial measurement window from `GEOGRID_MT_MS`
//! (default 1,500 ms). A non-numeric CLI argument names the output file.
//!
//! Each trial pins T reader threads on one shared [`SnapshotCell`]: every
//! reader holds its own `SnapshotReader` (steady state: one atomic
//! version load per query) and `Router` (private scratch + caches) and
//! routes a deterministic hot-spot stream for the whole window, while the
//! writer splits and merges regions at a fixed pace so snapshots actually
//! change hands mid-trial. Every 512th query is verified hop-for-hop
//! against the allocating `route_uncached` reference *on the same
//! snapshot* — under churn, parity is meaningful only against the pinned
//! epoch, never the moving topology.
//!
//! Reported scaling is honest about the host: `speedup` is raw
//! routes/sec over the single-thread trial, and `efficiency` normalizes
//! that by the *attainable* ideal `min(threads, host_cores)` — on a
//! single-core host 8 threads cannot beat 1× throughput, and the
//! interesting number is how little the lock-free read path loses to
//! scheduling overhead (≥ 0.7 = the snapshot design scales).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use geogrid_bench::common::build_network;
use geogrid_bench::ExperimentConfig;
use geogrid_core::builder::Mode;
use geogrid_core::routing::{self, RouteOptions, Router};
use geogrid_core::snapshot::{TopologySnapshot, TopologyView};
use geogrid_core::{RegionId, Topology};
use geogrid_geometry::Point;

/// Default region count (matches the acceptance sweep).
const DEFAULT_REGIONS: usize = 65_536;

/// Default reader thread counts swept.
const DEFAULT_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Default measurement window per thread count, in milliseconds.
const DEFAULT_WINDOW_MS: u64 = 1_500;

/// Check every Nth query hop-for-hop against `route_uncached`.
const PARITY_EVERY: u64 = 512;

/// Pause between writer mutations: churn at a realistic overlay pace
/// (~6 splits+merges/sec — node arrivals/departures, not a routing-rate
/// event) instead of saturating the core the readers need. Every publish
/// invalidates each reader's epoch-keyed route cache, so the churn rate
/// directly sets how often T threads pay T re-warms; pathological churn
/// is the stress test's job (`concurrent_routing.rs`), while this bench
/// measures the steady lock-free read path with live invalidation.
const WRITER_PACE: Duration = Duration::from_millis(160);

/// Deterministic per-thread query stream (Weyl sequence): 80% of queries
/// hit one of 64 fixed hot points in a 2-mile square, 20% probe uniform.
fn target(thread: u64, i: u64) -> Point {
    let k = thread * 1_000_000_007 + i;
    if k.is_multiple_of(5) {
        let u = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
        let v = (k.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 11) as f64 / (1u64 << 53) as f64;
        Point::new(u * 64.0, v * 64.0)
    } else {
        let h = k.wrapping_mul(0xD1B5_4A32_D192_ED03) % 64 + 1;
        let u = (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
        let v = (h.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 11) as f64 / (1u64 << 53) as f64;
        Point::new(46.0 + 2.0 * u, 46.0 + 2.0 * v)
    }
}

/// A live region of `snap` near slot `k` (linear probe over the slot
/// table; cheap because live density stays high under the churn mix).
fn pick_live(snap: &TopologySnapshot, k: usize) -> RegionId {
    let slots = snap.slot_count();
    let mut s = k % slots;
    loop {
        if snap.is_live(s) {
            return RegionId::new(s as u32);
        }
        s = (s + 1) % slots;
    }
}

fn grow(t: &mut Topology, at: Point) {
    let Ok(rid) = t.locate_scan(at) else { return };
    let primary = t.region(rid).expect("live").primary();
    let j = t.register_node(at, 10.0);
    let _ = t.split_region(rid, primary, j);
}

fn shrink(t: &mut Topology, at: Point) {
    let Ok(rid) = t.locate_scan(at) else { return };
    let entry = t.region(rid).expect("live");
    let primary = entry.primary();
    let neighbors: Vec<RegionId> = entry.neighbors().to_vec();
    for n in neighbors {
        let Some(ne) = t.region(n) else { continue };
        if t.region(rid)
            .expect("live")
            .region()
            .merge(&ne.region())
            .is_some()
        {
            let _ = t.merge_regions(rid, n, primary, None);
            return;
        }
    }
}

/// Writer pace from `GEOGRID_MT_CHURN_MS` (0 disables the writer; the
/// trial then measures the pure steady-state read path).
fn writer_pace() -> Option<Duration> {
    match std::env::var("GEOGRID_MT_CHURN_MS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        Some(0) => None,
        Some(ms) => Some(Duration::from_millis(ms)),
        None => Some(WRITER_PACE),
    }
}

struct Trial {
    threads: usize,
    routes: u64,
    hops: u64,
    parity_checks: u64,
    writer_ops: u64,
    epochs_seen: u64,
    elapsed_s: f64,
}

/// One measurement window with `threads` readers and the churn writer.
fn run_trial(t: &mut Topology, threads: usize, window: Duration) -> Trial {
    let cell = t.publish_handle();
    let stop = AtomicBool::new(false);
    let start = Barrier::new(threads + 1);
    let began = Instant::now();
    let (mut writer_ops, mut results) = (0u64, Vec::new());
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for thread in 0..threads as u64 {
            let mut reader = cell.reader();
            let (stop, start) = (&stop, &start);
            handles.push(s.spawn(move || {
                let mut router = Router::new();
                let greedy = RouteOptions::greedy();
                let (mut routes, mut hops, mut checks, mut epochs) = (0u64, 0u64, 0u64, 0u64);
                let mut last_epoch = 0u64;
                start.wait();
                while !stop.load(Ordering::Acquire) {
                    // No Arc clone per query: route on the borrowed
                    // snapshot (steady state = one atomic version load);
                    // cloning would bounce the refcount line between
                    // every reader thread.
                    let snap: &TopologySnapshot = reader.current();
                    assert!(snap.epoch() >= last_epoch, "epoch moved backwards");
                    if snap.epoch() != last_epoch {
                        epochs += 1;
                        last_epoch = snap.epoch();
                    }
                    let from = pick_live(snap, (routes as usize).wrapping_mul(7919));
                    let q = target(thread + 1, routes);
                    let executor = router
                        .route(snap, from, q, &greedy)
                        .expect("routable on snapshot");
                    hops += router.hop_count() as u64;
                    if routes.is_multiple_of(PARITY_EVERY) {
                        let reference = routing::route_uncached(snap, from, q).expect("reference");
                        assert_eq!(executor, reference.executor, "executor diverged");
                        assert_eq!(router.hops(), &reference.hops[..], "hops diverged");
                        checks += 1;
                    }
                    routes += 1;
                }
                (routes, hops, checks, epochs)
            }));
        }

        // Churn writer: paced split/merge storm on the live topology.
        start.wait();
        let pace = writer_pace();
        while began.elapsed() < window {
            match pace {
                Some(pace) => {
                    let i = writer_ops;
                    let p = target(997, i * 3 + 1);
                    if i % 3 == 2 {
                        shrink(t, p);
                    } else {
                        grow(t, p);
                    }
                    writer_ops += 1;
                    std::thread::sleep(pace);
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        stop.store(true, Ordering::Release);
        results = handles
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .collect();
    });
    let elapsed_s = began.elapsed().as_secs_f64();
    Trial {
        threads,
        routes: results.iter().map(|r| r.0).sum(),
        hops: results.iter().map(|r| r.1).sum(),
        parity_checks: results.iter().map(|r| r.2).sum(),
        writer_ops,
        epochs_seen: results.iter().map(|r| r.3).sum(),
        elapsed_s,
    }
}

fn parse_config() -> (usize, Vec<usize>, Duration, String) {
    let regions = std::env::var("GEOGRID_MT_REGIONS")
        .ok()
        .and_then(|s| s.trim().replace('_', "").parse().ok())
        .unwrap_or(DEFAULT_REGIONS);
    let mut threads: Vec<usize> = std::env::var("GEOGRID_MT_THREADS")
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_default();
    if threads.is_empty() {
        threads.extend(DEFAULT_THREADS);
    }
    let window = Duration::from_millis(
        std::env::var("GEOGRID_MT_MS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(DEFAULT_WINDOW_MS),
    );
    let mut out = "BENCH_routing_mt.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg.parse::<usize>().is_err() {
            out = arg;
        }
    }
    (regions, threads, window, out)
}

fn main() {
    let (regions, threads, window, path) = parse_config();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = ExperimentConfig::default();
    eprintln!("routing_mt_bench: building {regions}-region network...");
    let built = Instant::now();
    let mut topo = build_network(&config, Mode::Basic, regions, 0);
    eprintln!(
        "routing_mt_bench: built in {:.1}s; host has {host_cores} core(s)",
        built.elapsed().as_secs_f64()
    );

    let trials: Vec<Trial> = threads
        .iter()
        .map(|&n| run_trial(&mut topo, n, window))
        .collect();
    let base_rps = trials
        .first()
        .map(|t| t.routes as f64 / t.elapsed_s)
        .unwrap_or(1.0);

    println!(
        "{:>7} {:>12} {:>12} {:>8} {:>10} {:>9} {:>7} {:>7}",
        "threads", "routes", "routes/sec", "speedup", "efficiency", "hops_mean", "parity", "epochs"
    );
    let mut entries = Vec::new();
    for t in &trials {
        let rps = t.routes as f64 / t.elapsed_s;
        let speedup = rps / base_rps;
        let ideal = t.threads.min(host_cores) as f64;
        let efficiency = speedup / ideal;
        let hops_mean = t.hops as f64 / t.routes.max(1) as f64;
        println!(
            "{:>7} {:>12} {:>12.0} {:>7.2}x {:>10.3} {:>9.2} {:>7} {:>7}",
            t.threads,
            t.routes,
            rps,
            speedup,
            efficiency,
            hops_mean,
            t.parity_checks,
            t.epochs_seen
        );
        entries.push(format!(
            "    {{\n      \"threads\": {},\n      \"routes\": {},\n      \"elapsed_s\": {:.3},\n      \"routes_per_sec\": {:.0},\n      \"speedup_vs_1\": {:.3},\n      \"efficiency_vs_ideal\": {:.3},\n      \"hops_mean\": {:.3},\n      \"parity_checks\": {},\n      \"writer_ops\": {},\n      \"distinct_epochs_seen\": {}\n    }}",
            t.threads,
            t.routes,
            t.elapsed_s,
            rps,
            speedup,
            efficiency,
            hops_mean,
            t.parity_checks,
            t.writer_ops,
            t.epochs_seen
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"routing_mt\",\n  \"command\": \"cargo run --release -p geogrid-bench --bin routing_mt_bench\",\n  \"workload\": \"{regions}-region basic network; T reader threads route the hot-spot stream lock-free on epoch-published snapshots (every {PARITY_EVERY}th query verified hop-for-hop vs route_uncached on the same snapshot) while one writer splits/merges at ~25 ops/sec\",\n  \"host_cores\": {host_cores},\n  \"note\": \"speedup is raw routes/sec vs the 1-thread trial; efficiency_vs_ideal divides speedup by min(threads, host_cores) — the attainable ideal on this host\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&path, json).expect("write BENCH_routing_mt.json");
    println!("-> wrote {path}");
}
