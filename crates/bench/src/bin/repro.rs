//! Regenerates every table and figure of the GeoGrid paper.
//!
//! ```text
//! repro <experiment> [--trials N] [--hotspots N] [--seed N] [--out DIR]
//!
//! experiments:
//!   fig2 fig3      region size & load distributions (run together)
//!   fig4 | mech    the eight adaptation vignettes
//!   fig5 fig6      workload-index std-dev & mean vs N (run together)
//!   fig7 fig8      convergence by adaptation round (run together)
//!   fig9 fig10     convergence by adaptation count (run together)
//!   routing        O(2*sqrt(N)) hop-count sweep
//!   ablation       design-choice ablations
//!   failover       dual-peer fault-resilience measurement
//!   all            everything above
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use geogrid_bench::ExperimentConfig;
use geogrid_bench::{ablation, common, failover, fig23, fig56, fig78, fig910, mech, routing_exp};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <fig2|fig3|fig4|mech|fig5|fig6|fig7|fig8|fig9|fig10|routing|ablation|failover|all> \
         [--trials N] [--hotspots N] [--seed N] [--out DIR]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(experiment) = args.next() else {
        return usage();
    };
    let mut config = ExperimentConfig::default();
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            eprintln!("missing value for {flag}");
            return usage();
        };
        match flag.as_str() {
            "--trials" => match value.parse() {
                Ok(v) => config.trials = v,
                Err(_) => return usage(),
            },
            "--hotspots" => match value.parse() {
                Ok(v) => config.hotspots = v,
                Err(_) => return usage(),
            },
            "--seed" => match value.parse() {
                Ok(v) => config.seed = v,
                Err(_) => return usage(),
            },
            "--out" => config.out_dir = PathBuf::from(value),
            _ => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
        }
    }
    common::ensure_dir(&config.out_dir);
    println!(
        "GeoGrid reproduction: experiment={experiment} trials={} hotspots={} seed={} out={}",
        config.trials,
        config.hotspots,
        config.seed,
        config.out_dir.display()
    );

    let started = std::time::Instant::now();
    match experiment.as_str() {
        "fig2" | "fig3" | "fig2_3" => {
            fig23::run(&config);
        }
        "fig4" | "mech" => {
            mech::run(&config);
        }
        "fig5" | "fig6" | "fig5_6" => {
            fig56::run(&config);
        }
        "fig7" | "fig8" | "fig7_8" => {
            fig78::run(&config);
        }
        "fig9" | "fig10" | "fig9_10" => {
            fig910::run(&config);
        }
        "routing" => {
            routing_exp::run(&config);
        }
        "ablation" => {
            ablation::run(&config);
        }
        "failover" => {
            failover::run(&config);
        }
        "all" => {
            fig23::run(&config);
            mech::run(&config);
            routing_exp::run(&config);
            fig56::run(&config);
            fig78::run(&config);
            fig910::run(&config);
            ablation::run(&config);
            failover::run(&config);
        }
        _ => return usage(),
    }
    println!("done in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
