//! Diagnostic: validates built networks across sizes/modes/trials.
//! Kept as a maintenance tool; `repro` is the user-facing binary.
use geogrid_core::builder::{Mode, NetworkBuilder};
use geogrid_geometry::Space;

fn main() {
    let mut bad = 0;
    for &n in &[500usize, 2000, 4000] {
        for trial in 0..5u64 {
            for mode in [Mode::Basic, Mode::DualPeer] {
                let seed = 20070625u64 ^ (trial << 17) ^ n as u64;
                let net = NetworkBuilder::new(Space::paper_evaluation(), seed)
                    .mode(mode)
                    .build(n);
                if let Err(e) = net.topology().validate() {
                    println!("n={n} trial={trial} {mode:?}: INVALID: {e}");
                    bad += 1;
                }
            }
        }
    }
    println!("{} invalid networks", bad);
}
