//! Diagnostic: find the first ownership fork in a simulated overlay.
use geogrid_core::engine::sim::SimHarness;
use geogrid_core::engine::{ClientEvent, EngineConfig, EngineMode, Input};
use geogrid_core::service::LocationQuery;
use geogrid_core::topology::Role;
use geogrid_core::NodeId;
use geogrid_geometry::{Point, Region, Space};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn scan(h: &SimHarness, tag: &str) -> bool {
    let views = h.owner_views();
    let prim: Vec<_> = views
        .iter()
        .filter(|(_, v)| v.role == Role::Primary)
        .collect();
    for (a, (ida, va)) in prim.iter().enumerate() {
        for (idb, vb) in prim.iter().skip(a + 1) {
            if va.region.intersects(&vb.region) {
                println!(
                    "FORK {tag}: {ida} {} (peer {:?}) vs {idb} {} (peer {:?})",
                    va.region,
                    va.peer.map(|p| p.id()),
                    vb.region,
                    vb.peer.map(|p| p.id())
                );
                return true;
            }
        }
    }
    false
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4002);
    let nodes: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let space = Space::paper_evaluation();
    let mut h = SimHarness::new(
        space,
        EngineConfig {
            mode: EngineMode::DualPeer,
            ..EngineConfig::default()
        },
        seed,
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let coord =
        |rng: &mut SmallRng| Point::new(rng.random_range(0.2..63.8), rng.random_range(0.2..63.8));
    let caps = [1.0, 10.0, 10.0, 100.0, 10.0, 1.0, 10.0, 100.0, 1000.0, 10.0];
    h.bootstrap(coord(&mut rng), 10.0);
    for i in 1..nodes {
        h.join(coord(&mut rng), caps[i % caps.len()]);
        h.run_for(250);
    }
    h.settle();
    if scan(&h, "post-build") {
        return;
    }
    let asker = NodeId::new(0);
    for q in 0..100 {
        let p = coord(&mut rng);
        h.inject(
            asker,
            Input::UserQuery {
                query: LocationQuery::new(Region::new(p.x - 0.5, p.y - 0.5, 1.0, 1.0), asker),
            },
        );
        h.run_for(60);
        if scan(&h, &format!("after query {q}")) {
            // dump adaptation events
            for i in 0..nodes as u64 {
                for e in h.events_of(NodeId::new(i)) {
                    if let ClientEvent::AdaptationExecuted { mechanism } = e {
                        println!("  n{i} executed ({mechanism})");
                    }
                }
            }
            return;
        }
    }
    println!("no fork");
}
