//! Machine-readable routing baseline: cold vs. warm-cache ns/route on a
//! hot-spot workload, written to `BENCH_routing.json`.
//!
//! Regenerate with exactly one command (from the repo root):
//!
//! ```text
//! cargo run --release -p geogrid-bench --bin routing_bench
//! ```
//!
//! *Cold* routes through `routing::route_uncached` (per-query `HashSet`
//! and `Vec`s, nothing shared between queries); *warm* routes the same
//! query stream through `routing::route_into` with one persistent
//! `RouteScratch`, so next hops toward the hot cell come from the
//! epoch-validated cache. Both walk identical paths (the engine is
//! verified hop-for-hop against the reference), so the ratio isolates
//! the engine overhead.

use std::time::Instant;

use geogrid_bench::common::build_network;
use geogrid_bench::ExperimentConfig;
use geogrid_core::builder::Mode;
use geogrid_core::routing::{self, RouteScratch};
use geogrid_core::RegionId;
use geogrid_geometry::Point;

/// Network sizes swept (basic mode: regions == nodes).
const SIZES: [usize; 3] = [1_024, 4_096, 16_384];

/// Routed queries measured per size.
const ROUTES: usize = 20_000;

/// Fixed hot points in the hot-spot square.
const HOT_POINTS: u64 = 64;

/// Hot-spot query stream (paper §4): 80% of queries target one of
/// [`HOT_POINTS`] fixed places inside a 2-mile square — location queries
/// name concrete destinations ("the traffic around Exit 89"), so the hot
/// stream repeats exact coordinates — and the rest probe uniform points
/// over the plane. Weyl sequences keep the stream deterministic.
fn hotspot_target(i: u64) -> Point {
    if i.is_multiple_of(5) {
        let u = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
        let v = (i.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 11) as f64 / (1u64 << 53) as f64;
        Point::new(u * 64.0, v * 64.0)
    } else {
        let k = i.wrapping_mul(0xD1B5_4A32_D192_ED03) % HOT_POINTS + 1;
        let u = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
        let v = (k.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 11) as f64 / (1u64 << 53) as f64;
        Point::new(46.0 + 2.0 * u, 46.0 + 2.0 * v)
    }
}

struct Row {
    regions: usize,
    cold_ns_per_route: f64,
    warm_ns_per_route: f64,
    hops_mean: f64,
    cache_hit_rate: f64,
}

fn measure(config: &ExperimentConfig, n: usize) -> Row {
    eprintln!("routing_bench: building {n}-region network...");
    let topo = build_network(config, Mode::Basic, n, 0);
    let sources: Vec<RegionId> = topo.region_ids().collect();
    let pair = |i: u64| {
        (
            sources[(i as usize).wrapping_mul(7) % sources.len()],
            hotspot_target(i),
        )
    };

    // Cold: the allocating reference, nothing carried between queries.
    let start = Instant::now();
    let mut cold_hops = 0usize;
    for i in 1..=ROUTES as u64 {
        let (from, target) = pair(i);
        cold_hops += routing::route_uncached(&topo, from, target)
            .expect("routable")
            .hop_count();
    }
    let cold_ns = start.elapsed().as_nanos() as f64 / ROUTES as f64;

    // Warm: one scratch for the stream, cache pre-warmed by a full pass.
    let mut scratch = RouteScratch::new();
    for i in 1..=ROUTES as u64 {
        let (from, target) = pair(i);
        routing::route_into(&topo, from, target, &mut scratch).expect("routable");
    }
    scratch.reset_stats();
    let start = Instant::now();
    let mut warm_hops = 0usize;
    for i in 1..=ROUTES as u64 {
        let (from, target) = pair(i);
        routing::route_into(&topo, from, target, &mut scratch).expect("routable");
        warm_hops += scratch.hop_count();
    }
    let warm_ns = start.elapsed().as_nanos() as f64 / ROUTES as f64;
    assert_eq!(cold_hops, warm_hops, "engines must walk identical paths");

    Row {
        regions: n,
        cold_ns_per_route: cold_ns,
        warm_ns_per_route: warm_ns,
        hops_mean: warm_hops as f64 / ROUTES as f64,
        cache_hit_rate: scratch.hit_rate(),
    }
}

fn main() {
    let config = ExperimentConfig::default();
    let rows: Vec<Row> = SIZES.iter().map(|&n| measure(&config, n)).collect();

    println!(
        "{:>8} {:>14} {:>14} {:>9} {:>10} {:>9}",
        "regions", "cold_ns/route", "warm_ns/route", "speedup", "hops_mean", "hit_rate"
    );
    let mut entries = Vec::new();
    for r in &rows {
        let speedup = r.cold_ns_per_route / r.warm_ns_per_route;
        println!(
            "{:>8} {:>14.0} {:>14.0} {:>8.1}x {:>10.2} {:>9.3}",
            r.regions,
            r.cold_ns_per_route,
            r.warm_ns_per_route,
            speedup,
            r.hops_mean,
            r.cache_hit_rate
        );
        entries.push(format!(
            "    {{\n      \"regions\": {},\n      \"cold_ns_per_route\": {:.1},\n      \"warm_ns_per_route\": {:.1},\n      \"speedup\": {:.2},\n      \"hops_mean\": {:.3},\n      \"cache_hit_rate\": {:.4}\n    }}",
            r.regions, r.cold_ns_per_route, r.warm_ns_per_route, speedup, r.hops_mean, r.cache_hit_rate
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"routing\",\n  \"command\": \"cargo run --release -p geogrid-bench --bin routing_bench\",\n  \"workload\": \"hot-spot stream: 80% of queries target one of 64 fixed hot points in a 2-mile square, 20% uniform, {ROUTES} routes per size, basic-mode networks\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_routing.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_routing.json");
    println!("-> wrote {path}");
}
