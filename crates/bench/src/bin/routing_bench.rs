//! Machine-readable routing baseline: cold vs. warm-cache ns/route on a
//! hot-spot workload, for both the greedy mesh walk and the two-phase
//! express engine, written to `BENCH_routing.json`.
//!
//! Regenerate with exactly one command (from the repo root):
//!
//! ```text
//! cargo run --release -p geogrid-bench --bin routing_bench
//! ```
//!
//! Network sizes come from `GEOGRID_BENCH_SIZES` (comma-separated) or
//! numeric CLI arguments, defaulting to the full sweep up to 1,048,576
//! regions; `GEOGRID_BENCH_ROUTES` overrides the per-size query count
//! (default 20,000). A non-numeric argument names the output file.
//!
//! *Cold* routes through `routing::route_uncached` (per-query `HashSet`
//! and `Vec`s, nothing shared between queries); *warm* routes the same
//! query stream through one persistent `Router` — once with the
//! paper-faithful greedy `RouteOptions::greedy()` (hop-for-hop identical
//! to cold, so the ratio isolates engine overhead) and once with
//! `RouteOptions::express()`, whose express-finger descent shortens
//! long paths to O(log N) hops before handing off to the same greedy
//! walk. Each variant's hops-vs-N scaling exponent is fitted by
//! least squares on the log-log sweep.

use std::time::Instant;

use geogrid_bench::common::build_network;
use geogrid_bench::ExperimentConfig;
use geogrid_core::builder::Mode;
use geogrid_core::routing::{self, RouteOptions, Router};
use geogrid_core::RegionId;
use geogrid_geometry::Point;

/// Default network sizes swept (basic mode: regions == nodes).
const DEFAULT_SIZES: [usize; 5] = [1_024, 4_096, 16_384, 65_536, 1_048_576];

/// Default routed queries measured per size.
const DEFAULT_ROUTES: usize = 20_000;

/// Fixed hot points in the hot-spot square.
const HOT_POINTS: u64 = 64;

/// Hot-spot query stream (paper §4): 80% of queries target one of
/// [`HOT_POINTS`] fixed places inside a 2-mile square — location queries
/// name concrete destinations ("the traffic around Exit 89"), so the hot
/// stream repeats exact coordinates — and the rest probe uniform points
/// over the plane. Weyl sequences keep the stream deterministic.
fn hotspot_target(i: u64) -> Point {
    if i.is_multiple_of(5) {
        let u = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
        let v = (i.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 11) as f64 / (1u64 << 53) as f64;
        Point::new(u * 64.0, v * 64.0)
    } else {
        let k = i.wrapping_mul(0xD1B5_4A32_D192_ED03) % HOT_POINTS + 1;
        let u = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
        let v = (k.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 11) as f64 / (1u64 << 53) as f64;
        Point::new(46.0 + 2.0 * u, 46.0 + 2.0 * v)
    }
}

struct Row {
    regions: usize,
    variant: &'static str,
    express: bool,
    cold_ns_per_route: f64,
    warm_ns_per_route: f64,
    hops_mean: f64,
    cache_hit_rate: f64,
    express_prefix_mean: f64,
}

/// One warm pass of `routes` queries through the given engine: a full
/// cache-warming sweep, then the timed sweep. Returns
/// (ns/route, total hops, total express-prefix hops, hit rate).
fn warm_pass(
    topo: &geogrid_core::Topology,
    sources: &[RegionId],
    routes: usize,
    express: bool,
) -> (f64, usize, usize, f64) {
    let pair = |i: u64| {
        (
            sources[(i as usize).wrapping_mul(7) % sources.len()],
            hotspot_target(i),
        )
    };
    let mut router = Router::new();
    let options = if express {
        RouteOptions::express()
    } else {
        RouteOptions::greedy()
    };
    let run = |router: &mut Router, from, target| {
        router
            .route(topo, from, target, &options)
            .expect("routable")
    };
    for i in 1..=routes as u64 {
        let (from, target) = pair(i);
        run(&mut router, from, target);
    }
    router.reset_stats();
    let start = Instant::now();
    let (mut hops, mut prefix) = (0usize, 0usize);
    for i in 1..=routes as u64 {
        let (from, target) = pair(i);
        run(&mut router, from, target);
        hops += router.hop_count();
        prefix += router.express_prefix();
    }
    let ns = start.elapsed().as_nanos() as f64 / routes as f64;
    (ns, hops, prefix, router.hit_rate())
}

/// Measures one network size: a shared cold reference pass, then a warm
/// greedy row and a warm express row.
fn measure(config: &ExperimentConfig, n: usize, routes: usize) -> [Row; 2] {
    eprintln!("routing_bench: building {n}-region network...");
    let built = Instant::now();
    let topo = build_network(config, Mode::Basic, n, 0);
    eprintln!(
        "routing_bench: built {n} regions in {:.1}s",
        built.elapsed().as_secs_f64()
    );
    let sources: Vec<RegionId> = topo.region_ids().collect();

    // Cold: the allocating reference, nothing carried between queries.
    let start = Instant::now();
    let mut cold_hops = 0usize;
    for i in 1..=routes as u64 {
        let from = sources[(i as usize).wrapping_mul(7) % sources.len()];
        cold_hops += routing::route_uncached(&topo, from, hotspot_target(i))
            .expect("routable")
            .hop_count();
    }
    let cold_ns = start.elapsed().as_nanos() as f64 / routes as f64;

    let (greedy_ns, greedy_hops, _, greedy_hits) = warm_pass(&topo, &sources, routes, false);
    assert_eq!(cold_hops, greedy_hops, "engines must walk identical paths");
    let (express_ns, express_hops, express_prefix, express_hits) =
        warm_pass(&topo, &sources, routes, true);
    assert!(
        express_hops <= cold_hops,
        "express walked {express_hops} total hops vs greedy {cold_hops}"
    );

    [
        Row {
            regions: n,
            variant: "greedy",
            express: false,
            cold_ns_per_route: cold_ns,
            warm_ns_per_route: greedy_ns,
            hops_mean: greedy_hops as f64 / routes as f64,
            cache_hit_rate: greedy_hits,
            express_prefix_mean: 0.0,
        },
        Row {
            regions: n,
            variant: "express",
            express: true,
            cold_ns_per_route: cold_ns,
            warm_ns_per_route: express_ns,
            hops_mean: express_hops as f64 / routes as f64,
            cache_hit_rate: express_hits,
            express_prefix_mean: express_prefix as f64 / routes as f64,
        },
    ]
}

/// Least-squares slope of ln(hops_mean) against ln(regions): the fitted
/// exponent b of hops ≈ a·N^b. Needs ≥ 2 sizes; NaN otherwise.
fn scaling_exponent(rows: &[&Row]) -> f64 {
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| ((r.regions as f64).ln(), r.hops_mean.ln()))
        .collect();
    let k = pts.len() as f64;
    let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |(a, b), p| (a + p.0, b + p.1));
    let (sxx, sxy) = pts
        .iter()
        .fold((0.0, 0.0), |(a, b), p| (a + p.0 * p.0, b + p.0 * p.1));
    (k * sxy - sx * sy) / (k * sxx - sx * sx)
}

/// Sizes from `GEOGRID_BENCH_SIZES` / numeric CLI args; output path from
/// the first non-numeric argument.
fn parse_config() -> (Vec<usize>, usize, String) {
    let mut sizes: Vec<usize> = Vec::new();
    let mut out = "BENCH_routing.json".to_string();
    if let Ok(env_sizes) = std::env::var("GEOGRID_BENCH_SIZES") {
        sizes.extend(
            env_sizes
                .split(',')
                .filter_map(|s| s.trim().replace('_', "").parse::<usize>().ok()),
        );
    }
    for arg in std::env::args().skip(1) {
        match arg.replace('_', "").parse::<usize>() {
            Ok(n) => sizes.push(n),
            Err(_) => out = arg,
        }
    }
    if sizes.is_empty() {
        sizes.extend(DEFAULT_SIZES);
    }
    let routes = std::env::var("GEOGRID_BENCH_ROUTES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_ROUTES);
    (sizes, routes, out)
}

fn main() {
    let (sizes, routes, path) = parse_config();
    let config = ExperimentConfig::default();
    let rows: Vec<Row> = sizes
        .iter()
        .flat_map(|&n| measure(&config, n, routes))
        .collect();

    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>9} {:>10} {:>11} {:>9}",
        "regions",
        "variant",
        "cold_ns/route",
        "warm_ns/route",
        "speedup",
        "hops_mean",
        "expr_prefix",
        "hit_rate"
    );
    let mut entries = Vec::new();
    for r in &rows {
        let speedup = r.cold_ns_per_route / r.warm_ns_per_route;
        println!(
            "{:>8} {:>8} {:>14.0} {:>14.0} {:>8.1}x {:>10.2} {:>11.2} {:>9.3}",
            r.regions,
            r.variant,
            r.cold_ns_per_route,
            r.warm_ns_per_route,
            speedup,
            r.hops_mean,
            r.express_prefix_mean,
            r.cache_hit_rate
        );
        entries.push(format!(
            "    {{\n      \"regions\": {},\n      \"variant\": \"{}\",\n      \"express\": {},\n      \"cold_ns_per_route\": {:.1},\n      \"warm_ns_per_route\": {:.1},\n      \"speedup\": {:.2},\n      \"hops_mean\": {:.3},\n      \"express_prefix_mean\": {:.3},\n      \"cache_hit_rate\": {:.4}\n    }}",
            r.regions,
            r.variant,
            r.express,
            r.cold_ns_per_route,
            r.warm_ns_per_route,
            speedup,
            r.hops_mean,
            r.express_prefix_mean,
            r.cache_hit_rate
        ));
    }

    let fit = |variant: &str| {
        let picked: Vec<&Row> = rows.iter().filter(|r| r.variant == variant).collect();
        if picked.len() < 2 {
            "null".to_string()
        } else {
            format!("{:.4}", scaling_exponent(&picked))
        }
    };
    let (greedy_fit, express_fit) = (fit("greedy"), fit("express"));
    println!("scaling exponent (hops ~ N^b): greedy b={greedy_fit}, express b={express_fit}");

    let json = format!(
        "{{\n  \"bench\": \"routing\",\n  \"command\": \"cargo run --release -p geogrid-bench --bin routing_bench\",\n  \"workload\": \"hot-spot stream: 80% of queries target one of 64 fixed hot points in a 2-mile square, 20% uniform, {routes} routes per size, basic-mode networks; variants: greedy mesh walk vs two-phase express-finger routing\",\n  \"scaling_exponent\": {{\n    \"greedy\": {greedy_fit},\n    \"express\": {express_fit}\n  }},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&path, json).expect("write BENCH_routing.json");
    println!("-> wrote {path}");
}
