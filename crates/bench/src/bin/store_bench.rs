//! Machine-readable location-store baseline: load/update throughput,
//! range-query latency percentiles, and subscription fan-out cost for a
//! single sharded-slab `RegionStore`, written to `BENCH_store.json`.
//!
//! Regenerate with exactly one command (from the repo root):
//!
//! ```text
//! cargo run --release -p geogrid-bench --bin store_bench
//! ```
//!
//! Object count comes from `GEOGRID_STORE_OBJECTS` or a numeric CLI
//! argument (default 1,048,576); `GEOGRID_STORE_UPDATES`,
//! `GEOGRID_STORE_QUERIES` and `GEOGRID_STORE_SUBS` override the other
//! phase sizes. A non-numeric argument names the output file.
//!
//! The workload is the paper's moving-objects stream: objects spread
//! over the whole 64×64 service area and drift by small GPS deltas,
//! while *attention* is hot-spot skewed — 80% of re-publishes move one
//! of a small commuter id set, and 80% of query centers and
//! subscription areas target one of 64 fixed hot places in a 2-mile
//! square (the same Weyl hot stream as `routing_bench`). Four timed
//! phases against one store:
//!
//! 1. **load** — publish every object once at its initial position;
//! 2. **update** — re-publish with a small position delta, the GPS hot
//!    path (slab overwrite + incremental grid re-file + wheel
//!    re-schedule, no per-op allocation);
//! 3. **query** — range queries with hot-spot-biased centers and mixed
//!    extents through the recycled-buffer `query_ids_into` path,
//!    per-query latency recorded for percentiles;
//! 4. **fan-out** — standing small-area subscriptions, then another
//!    update stream measuring notification cost per publish.
//!
//! Every record carries a TTL so the expiry wheel takes real scheduling
//! traffic; the store's amortized-expiry work counter is reported.

use std::time::Instant;

use geogrid_core::service::{LocationQuery, LocationRecord, RegionStore, Subscription};
use geogrid_core::NodeId;
use geogrid_geometry::{Point, Region};

/// Default live objects.
const DEFAULT_OBJECTS: usize = 1_048_576;

/// Default re-publish count (phase 2).
const DEFAULT_UPDATES: usize = 2_000_000;

/// Default range queries (phase 3).
const DEFAULT_QUERIES: usize = 20_000;

/// Default standing subscriptions (phase 4).
const DEFAULT_SUBS: usize = 10_000;

/// Fixed hot places in the hot-spot square.
const HOT_POINTS: u64 = 64;

/// Records outlive the whole run unless overwritten: TTL in ticks,
/// relative to the publish tick (the wheel still schedules every one).
const TTL_TICKS: u64 = 4 * DEFAULT_UPDATES as u64;

const M1: u64 = 0x9E37_79B9_7F4A_7C15;
const M2: u64 = 0xD1B5_4A32_D192_ED03;
const M3: u64 = 0xA24B_AED4_963E_E407;
const M4: u64 = 0x2545_F491_4F6C_DD1D;

fn unit(i: u64, m: u64) -> f64 {
    (i.wrapping_mul(m) >> 11) as f64 / (1u64 << 53) as f64
}

/// Hot-spot focus stream (paper §4), identical to `routing_bench`: 80%
/// of draws are one of [`HOT_POINTS`] fixed places inside a 2-mile
/// square, the rest uniform over the 64×64 plane. Drives query centers
/// and subscription areas — where attention goes, not where objects are.
fn hotspot_focus(i: u64) -> Point {
    if i.is_multiple_of(5) {
        let u = unit(i, M1);
        let v = unit(i, M2);
        Point::new(u * 64.0, v * 64.0)
    } else {
        let k = i.wrapping_mul(M2) % HOT_POINTS + 1;
        let u = unit(k, M1);
        let v = unit(k, M2);
        Point::new(46.0 + 2.0 * u, 46.0 + 2.0 * v)
    }
}

struct Config {
    objects: usize,
    updates: usize,
    queries: usize,
    subs: usize,
    out: String,
}

fn parse_config() -> Config {
    let env_num = |key: &str, default: usize| {
        std::env::var(key)
            .ok()
            .and_then(|s| s.trim().replace('_', "").parse().ok())
            .unwrap_or(default)
    };
    let mut objects = env_num("GEOGRID_STORE_OBJECTS", DEFAULT_OBJECTS);
    let mut out = "BENCH_store.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.replace('_', "").parse::<usize>() {
            Ok(n) => objects = n,
            Err(_) => out = arg,
        }
    }
    Config {
        objects,
        updates: env_num("GEOGRID_STORE_UPDATES", DEFAULT_UPDATES),
        queries: env_num("GEOGRID_STORE_QUERIES", DEFAULT_QUERIES),
        subs: env_num("GEOGRID_STORE_SUBS", DEFAULT_SUBS),
        out,
    }
}

fn percentile(sorted_ns: &[u64], pct: usize) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    sorted_ns[(sorted_ns.len() * pct / 100).min(sorted_ns.len() - 1)]
}

/// The moving-objects driver: per-object positions, hot-skewed id draws,
/// small-delta GPS steps.
struct Drivers {
    positions: Vec<Point>,
    /// Size of the "commuter" id set 80% of updates move.
    hot_ids: u64,
}

impl Drivers {
    fn new(objects: usize) -> Self {
        let positions = (0..objects as u64)
            .map(|id| Point::new(64.0 * unit(id + 1, M1), 64.0 * unit(id + 1, M2)))
            .collect();
        Self {
            positions,
            hot_ids: (objects as u64 / 16).max(1),
        }
    }

    /// 80% of updates move a commuter object, 20% any object.
    fn update_id(&self, i: u64) -> u64 {
        if i.is_multiple_of(5) {
            i.wrapping_mul(M4) % self.positions.len() as u64
        } else {
            i.wrapping_mul(M4) % self.hot_ids
        }
    }

    /// Steps object `id` by a small GPS delta (±0.125 per axis, clamped
    /// to the service area) and returns its new position.
    fn step(&mut self, id: u64, i: u64) -> Point {
        let p = &mut self.positions[id as usize];
        p.x = (p.x + 0.25 * (unit(i + 1, M3) - 0.5)).clamp(0.0, 63.999);
        p.y = (p.y + 0.25 * (unit(i + 2, M4) - 0.5)).clamp(0.0, 63.999);
        *p
    }
}

fn record_at(id: u64, pos: Point, now: u64) -> LocationRecord {
    LocationRecord::new(id, "loc", pos, vec![id as u8]).with_expiry(now + TTL_TICKS)
}

fn main() {
    let cfg = parse_config();
    let mut drivers = Drivers::new(cfg.objects);
    let mut store = RegionStore::new();
    store.set_node(1);
    let mut now = 0u64;
    let mut notified = Vec::new();

    // Phase 1: load.
    eprintln!("store_bench: loading {} objects...", cfg.objects);
    let start = Instant::now();
    for id in 0..cfg.objects as u64 {
        now += 1;
        store.publish_into(
            record_at(id, drivers.positions[id as usize], now),
            now,
            &mut notified,
        );
    }
    let load_secs = start.elapsed().as_secs_f64();
    assert_eq!(store.record_count(), cfg.objects, "every object loaded");

    // Phase 2: updates — GPS re-publishes of existing objects.
    eprintln!("store_bench: {} re-publishes...", cfg.updates);
    let start = Instant::now();
    for i in 0..cfg.updates as u64 {
        now += 1;
        let id = drivers.update_id(i);
        let pos = drivers.step(id, i);
        store.publish_into(record_at(id, pos, now), now, &mut notified);
    }
    let update_secs = start.elapsed().as_secs_f64();
    let updates_per_sec = cfg.updates as f64 / update_secs;
    assert_eq!(
        store.record_count(),
        cfg.objects,
        "updates overwrite, never grow"
    );

    // Phase 3: range queries through the recycled-buffer path.
    eprintln!("store_bench: {} range queries...", cfg.queries);
    let issuer = NodeId::new(2);
    let mut ids = Vec::new();
    let mut latencies = Vec::with_capacity(cfg.queries);
    let mut matches_total = 0usize;
    for i in 0..cfg.queries as u64 {
        let c = hotspot_focus(i.wrapping_add(7));
        let extent = 0.25 + 3.75 * unit(i + 1, M3);
        let area = Region::new(
            (c.x - extent / 2.0).clamp(0.0, 63.0),
            (c.y - extent / 2.0).clamp(0.0, 63.0),
            extent.min(64.0),
            extent.min(64.0),
        );
        let query = LocationQuery::new(area, issuer);
        let t = Instant::now();
        store.query_ids_into(&query, now, &mut ids);
        latencies.push(t.elapsed().as_nanos() as u64);
        matches_total += ids.len();
    }
    latencies.sort_unstable();
    let query_p50 = percentile(&latencies, 50);
    let query_p99 = percentile(&latencies, 99);
    let matches_mean = matches_total as f64 / cfg.queries.max(1) as f64;

    // Phase 4: subscription fan-out.
    eprintln!(
        "store_bench: {} subscriptions + fan-out stream...",
        cfg.subs
    );
    for s in 0..cfg.subs as u64 {
        now += 1;
        let c = hotspot_focus(s.wrapping_add(3));
        let area = Region::new(
            (c.x - 0.25).clamp(0.0, 63.0),
            (c.y - 0.25).clamp(0.0, 63.0),
            0.5,
            0.5,
        );
        let sub = Subscription::new(s, area, NodeId::new(100 + s % 256), now + TTL_TICKS);
        store.subscribe(sub, now);
    }
    let fanout_publishes = (cfg.updates / 4).max(1);
    let mut notifications = 0usize;
    let start = Instant::now();
    for i in 0..fanout_publishes as u64 {
        now += 1;
        let id = drivers.update_id(i);
        let pos = drivers.step(id, i.wrapping_add(11));
        store.publish_into(record_at(id, pos, now), now, &mut notified);
        notifications += notified.len();
    }
    let fanout_secs = start.elapsed().as_secs_f64();
    let fanout_ns = fanout_secs * 1e9 / fanout_publishes as f64;

    println!(
        "{:>10} {:>12} {:>13} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "objects",
        "load_per_s",
        "updates_per_s",
        "query_p50ns",
        "query_p99ns",
        "matches",
        "fanout_ns/pub",
        "notifs"
    );
    println!(
        "{:>10} {:>12.0} {:>13.0} {:>12} {:>12} {:>12.1} {:>14.0} {:>12}",
        cfg.objects,
        cfg.objects as f64 / load_secs,
        updates_per_sec,
        query_p50,
        query_p99,
        matches_mean,
        fanout_ns,
        notifications
    );
    println!(
        "expiry wheel work counter: {} (amortized over {} scheduled entries)",
        store.expiry_work(),
        cfg.objects + cfg.updates + cfg.subs + fanout_publishes
    );

    let json = format!(
        "{{\n  \"bench\": \"store\",\n  \"command\": \"cargo run --release -p geogrid-bench --bin store_bench\",\n  \"workload\": \"moving-objects stream over the 64x64 space: objects drift by small GPS deltas; 80% of updates move a commuter id set (1/16 of objects), 80% of query centers and subscription areas target one of 64 fixed hot places in a 2-mile square, extents 0.25-4.0; every record carries a TTL so the expiry wheel takes real traffic\",\n  \"objects\": {},\n  \"load_per_sec\": {:.0},\n  \"updates\": {},\n  \"updates_per_sec\": {:.0},\n  \"update_ns_mean\": {:.1},\n  \"queries\": {},\n  \"query_ns_p50\": {},\n  \"query_ns_p99\": {},\n  \"query_matches_mean\": {:.1},\n  \"subscriptions\": {},\n  \"fanout_publishes\": {},\n  \"fanout_ns_per_publish\": {:.1},\n  \"notifications_total\": {},\n  \"expiry_work\": {}\n}}\n",
        cfg.objects,
        cfg.objects as f64 / load_secs,
        cfg.updates,
        updates_per_sec,
        update_secs * 1e9 / cfg.updates.max(1) as f64,
        cfg.queries,
        query_p50,
        query_p99,
        matches_mean,
        cfg.subs,
        fanout_publishes,
        fanout_ns,
        notifications,
        store.expiry_work()
    );
    std::fs::write(&cfg.out, json).expect("write BENCH_store.json");
    println!("-> wrote {}", cfg.out);
}
