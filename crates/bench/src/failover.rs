//! Dual-peer fault-resilience experiment.
//!
//! The paper claims dual peer "improves the fault resilience of the
//! GeoGrid service network" but does not quantify it. This experiment
//! does, at the message level on the simulator:
//!
//! 1. build an overlay (basic vs dual peer) and publish records at random
//!    positions;
//! 2. crash a fraction of the nodes simultaneously (no goodbye messages);
//! 3. let heartbeat timeouts and fail-over promotions run;
//! 4. re-query every record's position from a surviving node.
//!
//! Reported per crash fraction: how many records are still retrievable
//! (data survival) and how many probe queries get *any* answer back
//! (service availability).
//!
//! Forwarding inside the simulated engine uses the same greedy next-hop
//! rule as `geogrid_core::routing` (each node scans its own neighbor
//! table with precomputed distance keys); fail-over promotions are
//! ownership changes only, which at the topology level leave the routing
//! epoch — and therefore any warmed route caches — intact.

use geogrid_core::engine::sim::SimHarness;
use geogrid_core::engine::{ClientEvent, EngineConfig, EngineMode, Input};
use geogrid_core::service::{LocationQuery, LocationRecord};
use geogrid_core::NodeId;
use geogrid_geometry::{Point, Region};
use geogrid_metrics::{table::Table, RunningStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::ExperimentConfig;
use crate::par::par_trials;

/// Nodes in the simulated overlay.
pub const NODES: usize = 48;

/// Records published before the crash.
pub const RECORDS: usize = 120;

/// Crash fractions swept.
pub const CRASH_FRACTIONS: [f64; 3] = [0.1, 0.25, 0.4];

/// One measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailoverRow {
    /// `basic` or `dual`.
    pub mode: &'static str,
    /// Fraction of nodes crashed.
    pub crash_fraction: f64,
    /// Fraction of records still retrievable after fail-over.
    pub survival: f64,
    /// Fraction of probe queries answered at all.
    pub availability: f64,
}

fn build(mode: EngineMode, seed: u64, nodes: usize) -> SimHarness {
    let mut h = SimHarness::new(
        geogrid_geometry::Space::paper_evaluation(),
        EngineConfig {
            mode,
            balance_enabled: false, // isolate fail-over from adaptation
            ..EngineConfig::default()
        },
        seed,
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD);
    let coord =
        |rng: &mut SmallRng| Point::new(rng.random_range(0.2..63.8), rng.random_range(0.2..63.8));
    let caps = [1.0, 10.0, 10.0, 100.0, 10.0];
    h.bootstrap(coord(&mut rng), 10.0);
    for i in 1..nodes {
        h.join(coord(&mut rng), caps[i % caps.len()]);
        h.run_for(250);
    }
    h.settle();
    h
}

/// Runs one (mode, crash fraction) trial; returns (survival, availability).
pub fn run_trial(
    mode: EngineMode,
    crash_fraction: f64,
    seed: u64,
    nodes: usize,
    records: usize,
) -> (f64, f64) {
    let mut h = build(mode, seed, nodes);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);

    // Publish through random live nodes.
    let mut positions = Vec::with_capacity(records);
    for i in 0..records {
        let pos = Point::new(rng.random_range(0.2..63.8), rng.random_range(0.2..63.8));
        positions.push(pos);
        let publisher = NodeId::new(rng.random_range(0..nodes as u64));
        h.inject(
            publisher,
            Input::UserPublish {
                record: LocationRecord::new(i as u64, "data", pos, vec![0u8; 16]),
            },
        );
        if i % 8 == 0 {
            h.run_for(120);
        }
    }
    h.run_for(3_000); // publishes route + replicas sync

    // Crash a random subset; keep node 0 alive as the prober.
    let crash_count = ((nodes as f64) * crash_fraction).round() as usize;
    let mut victims: Vec<u64> = (1..nodes as u64).collect();
    for i in (1..victims.len()).rev() {
        let j = rng.random_range(0..=i);
        victims.swap(i, j);
    }
    for &v in victims.iter().take(crash_count) {
        h.crash(NodeId::new(v));
    }
    // Heartbeat timeouts + promotions.
    h.run_for(4_000);

    // Probe every record position from the survivor.
    let prober = NodeId::new(0);
    let before_events = h.events_of(prober).len();
    for (i, pos) in positions.iter().enumerate() {
        h.inject(
            prober,
            Input::UserQuery {
                query: LocationQuery::new(
                    Region::new(pos.x - 0.05, pos.y - 0.05, 0.1, 0.1),
                    prober,
                ),
            },
        );
        if i % 8 == 0 {
            h.run_for(150);
        }
    }
    h.run_for(3_000);

    let mut answered = 0usize;
    let mut recovered = 0usize;
    for e in &h.events_of(prober)[before_events..] {
        if let ClientEvent::QueryResults { records, .. } = e {
            answered += 1;
            recovered += usize::from(!records.is_empty());
        }
    }
    (
        recovered as f64 / records as f64,
        answered as f64 / records as f64,
    )
}

/// Runs the sweep and emits `failover.csv`.
pub fn run(config: &ExperimentConfig) -> Vec<FailoverRow> {
    run_sized(config, NODES, RECORDS)
}

/// Runs with custom sizes (tests shrink them).
pub fn run_sized(config: &ExperimentConfig, nodes: usize, records: usize) -> Vec<FailoverRow> {
    let trials = config.trials.clamp(1, 10); // sim trials are heavier
    let mut rows = Vec::new();
    for &fraction in &CRASH_FRACTIONS {
        for (mode, label) in [(EngineMode::Basic, "basic"), (EngineMode::DualPeer, "dual")] {
            eprintln!("failover: {label} at {:.0}% crash...", fraction * 100.0);
            let mut survival = RunningStats::new();
            let mut availability = RunningStats::new();
            // Parallel sim trials, folded in trial order (identical to the
            // serial loop; each trial's harness is seeded by its index).
            let results = par_trials(trials, |trial| {
                let seed = config.seed ^ ((trial as u64) << 21) ^ (fraction * 100.0) as u64;
                run_trial(mode, fraction, seed, nodes, records)
            });
            for (s, a) in results {
                survival.push(s);
                availability.push(a);
            }
            rows.push(FailoverRow {
                mode: label,
                crash_fraction: fraction,
                survival: survival.mean(),
                availability: availability.mean(),
            });
        }
    }
    let mut table = Table::new([
        "mode",
        "crash_fraction",
        "record_survival",
        "query_availability",
    ]);
    for r in &rows {
        table.row([
            r.mode.to_string(),
            format!("{:.2}", r.crash_fraction),
            format!("{:.3}", r.survival),
            format!("{:.3}", r.availability),
        ]);
    }
    config.emit("failover", &table);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_peer_survives_more_than_basic() {
        let config = ExperimentConfig {
            trials: 2,
            out_dir: std::env::temp_dir().join("geogrid_failover_test"),
            ..ExperimentConfig::default()
        };
        let rows = run_sized(&config, 20, 40);
        // Compare at the heaviest crash fraction.
        let basic = rows
            .iter()
            .find(|r| r.mode == "basic" && r.crash_fraction == 0.4)
            .unwrap();
        let dual = rows
            .iter()
            .find(|r| r.mode == "dual" && r.crash_fraction == 0.4)
            .unwrap();
        assert!(
            dual.survival > basic.survival,
            "dual {} <= basic {}",
            dual.survival,
            basic.survival
        );
        // And dual must actually be resilient in absolute terms.
        assert!(dual.survival > 0.5, "dual survival only {}", dual.survival);
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }
}
