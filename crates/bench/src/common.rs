//! Shared experiment plumbing.

use std::path::{Path, PathBuf};

use geogrid_core::balance::{AdaptationEngine, BalanceConfig};
use geogrid_core::builder::{Mode, NetworkBuilder};
use geogrid_core::load::LoadMap;
use geogrid_core::Topology;
use geogrid_geometry::Space;
use geogrid_metrics::table::Table;
use geogrid_workload::{HotSpotField, WorkloadGrid};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Paper defaults: 64×64-mile plane, 0.5-mile workload cells, 10 hot
/// spots with radius ∈ [0.1, 10] miles.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Trials per setting (the paper uses 100 randomly generated
    /// networks; the default here keeps `repro all` minutes-scale).
    pub trials: usize,
    /// Number of hot spots in the workload field.
    pub hotspots: usize,
    /// Workload-cell side length in miles.
    pub cell_size: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            trials: 10,
            hotspots: 10,
            cell_size: 0.5,
            seed: 20070625, // ICDCS'07
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExperimentConfig {
    /// The evaluation space (the paper's 64 × 64 miles).
    pub fn space(&self) -> Space {
        Space::paper_evaluation()
    }

    /// A deterministic RNG for (experiment, trial).
    pub fn rng(&self, experiment: u64, trial: u64) -> SmallRng {
        SmallRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(experiment << 32)
                .wrapping_add(trial),
        )
    }

    /// Builds the trial's random hot-spot field and its cell grid.
    pub fn field_and_grid(&self, rng: &mut SmallRng) -> (HotSpotField, WorkloadGrid) {
        let field = HotSpotField::random(rng, self.space(), self.hotspots);
        let grid = WorkloadGrid::from_field(self.space(), self.cell_size, &field);
        (field, grid)
    }

    /// Prints a table and writes it as `<out_dir>/<name>.csv`.
    pub fn emit(&self, name: &str, table: &Table) {
        println!("\n== {name} ==");
        print!("{table}");
        let path = self.out_dir.join(format!("{name}.csv"));
        match table.write_csv(&path) {
            Ok(()) => println!("-> wrote {}", path.display()),
            Err(e) => eprintln!("-> FAILED to write {}: {e}", path.display()),
        }
    }
}

/// Builds a network of `n` nodes in the given mode, seeded per trial.
/// Every join routes through the builder's reusable `RouteScratch`
/// (see `geogrid_core::routing`), and the topology is moved out rather
/// than cloned.
pub fn build_network(config: &ExperimentConfig, mode: Mode, n: usize, trial: u64) -> Topology {
    NetworkBuilder::new(config.space(), config.seed ^ (trial << 17) ^ n as u64)
        .mode(mode)
        .build(n)
        .into_topology()
}

/// Runs adaptation to convergence (bounded) and returns the final loads.
pub fn adapt_until_stable(topo: &mut Topology, grid: &WorkloadGrid, max_rounds: usize) -> LoadMap {
    let mut loads = LoadMap::from_grid(topo, grid);
    let engine = AdaptationEngine::new(BalanceConfig::default());
    engine.run(topo, grid, &mut loads, max_rounds);
    loads
}

/// Formats a float for the tables (6 significant decimals).
pub fn fmt(v: f64) -> String {
    format!("{v:.6}")
}

/// Ensures the output directory exists (errors only surface on write).
pub fn ensure_dir(path: &Path) {
    let _ = std::fs::create_dir_all(path);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rngs_are_deterministic_and_distinct() {
        let c = ExperimentConfig::default();
        let a: Vec<u32> = {
            use rand::Rng;
            let mut r = c.rng(1, 1);
            (0..4).map(|_| r.random()).collect()
        };
        let b: Vec<u32> = {
            use rand::Rng;
            let mut r = c.rng(1, 1);
            (0..4).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        let d: Vec<u32> = {
            use rand::Rng;
            let mut r = c.rng(1, 2);
            (0..4).map(|_| r.random()).collect()
        };
        assert_ne!(a, d);
    }

    #[test]
    fn build_network_modes() {
        let c = ExperimentConfig::default();
        let basic = build_network(&c, Mode::Basic, 50, 0);
        assert_eq!(basic.region_count(), 50);
        let dual = build_network(&c, Mode::DualPeer, 50, 0);
        assert!(dual.region_count() < 50);
    }

    #[test]
    fn adaptation_helper_runs() {
        let c = ExperimentConfig::default();
        let mut rng = c.rng(9, 0);
        let (_, grid) = c.field_and_grid(&mut rng);
        let mut topo = build_network(&c, Mode::DualPeer, 100, 0);
        let loads = adapt_until_stable(&mut topo, &grid, 10);
        assert!(loads.summary(&topo).mean() >= 0.0);
        topo.validate().unwrap();
    }
}
