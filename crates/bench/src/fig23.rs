//! Figures 2 and 3: region size and load distribution of a 500-node
//! GeoGrid under random bootstrapping (Figure 2) and under the dual-peer
//! technique (Figure 3).
//!
//! The paper presents these as shaded maps; the harness reproduces the
//! underlying distributions: per-region rows (CSV), region-size histogram
//! statistics, and an ASCII load heat map. The two observations to check
//! against the paper: the dual-peer network has **fewer regions** whose
//! sizes **track owner capacity** (strong owners hold big regions), and
//! **fewer heavily loaded regions**.

use geogrid_core::builder::Mode;
use geogrid_core::load::LoadMap;
use geogrid_core::Topology;
use geogrid_metrics::{gini, table::Table, Summary};
use geogrid_workload::WorkloadGrid;

use crate::common::{build_network, ExperimentConfig};
use crate::par::par_trials;

/// Number of nodes in the visualized network (paper: 500).
pub const NODES: usize = 500;

/// Per-variant distribution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionStats {
    /// `basic` or `dual`.
    pub variant: &'static str,
    /// Live regions in the network.
    pub regions: usize,
    /// Summary of region areas.
    pub area: Summary,
    /// Summary of per-region workload indexes.
    pub index: Summary,
    /// Gini coefficient of the node workload indexes.
    pub index_gini: f64,
    /// Mean area of regions owned by capacity ≥ 1000 primaries.
    pub strong_area: f64,
    /// Mean area of regions owned by capacity ≤ 10 primaries.
    pub weak_area: f64,
}

fn stats_for(variant: &'static str, topo: &Topology, grid: &WorkloadGrid) -> DistributionStats {
    let loads = LoadMap::from_grid(topo, grid);
    let area = Summary::from_values(topo.regions().map(|(_, e)| e.region().area()));
    let index = loads.summary(topo);
    let index_gini = gini(loads.node_indexes(topo).into_values());
    let mut strong = Vec::new();
    let mut weak = Vec::new();
    for (_, e) in topo.regions() {
        let cap = topo.node(e.primary()).map(|n| n.capacity()).unwrap_or(0.0);
        if cap >= 1_000.0 {
            strong.push(e.region().area());
        } else if cap <= 10.0 {
            weak.push(e.region().area());
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    DistributionStats {
        variant,
        regions: topo.region_count(),
        area,
        index,
        index_gini,
        strong_area: mean(&strong),
        weak_area: mean(&weak),
    }
}

/// An ASCII heat map of the workload index over the plane (darker =
/// hotter), the textual stand-in for the paper's shaded figures.
pub fn heatmap(topo: &Topology, grid: &WorkloadGrid, cols: usize, rows: usize) -> String {
    let loads = LoadMap::from_grid(topo, grid);
    let space = topo.space();
    let (w, h) = space.extent();
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    // Find the max index for normalization.
    let max = topo
        .region_ids()
        .map(|r| loads.index_of(topo, r))
        .fold(f64::MIN_POSITIVE, f64::max);
    let mut out = String::new();
    for row in (0..rows).rev() {
        for col in 0..cols {
            let p = geogrid_geometry::Point::new(
                (col as f64 + 0.5) / cols as f64 * w,
                (row as f64 + 0.5) / rows as f64 * h,
            );
            let rid = topo.locate(p).expect("point in space");
            let v = loads.index_of(topo, rid) / max;
            let shade = ((v * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
            out.push(shades[shade]);
        }
        out.push('\n');
    }
    out
}

/// Renders the partition as an SVG map: one rectangle per region, filled
/// by normalized workload index (white = idle, dark red = hottest),
/// stroked boundaries, capacity-annotated. The vector counterpart of the
/// paper's shaded maps.
pub fn svg_map(topo: &Topology, grid: &WorkloadGrid, px: f64) -> String {
    let loads = LoadMap::from_grid(topo, grid);
    let (w, h) = topo.space().extent();
    let scale = px / w.max(h);
    let max = topo
        .region_ids()
        .map(|r| loads.index_of(topo, r))
        .fold(f64::MIN_POSITIVE, f64::max);
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"0 0 {:.0} {:.0}\">\n",
        w * scale,
        h * scale,
        w * scale,
        h * scale
    ));
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    for (rid, e) in topo.regions() {
        let r = e.region();
        let v = (loads.index_of(topo, rid) / max).clamp(0.0, 1.0);
        // White -> dark red ramp.
        let red = 255;
        let gb = (255.0 * (1.0 - v * 0.9)) as u8;
        // SVG y grows downward; flip latitude.
        let y = (h - r.y() - r.height()) * scale;
        out.push_str(&format!(
            "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
             fill=\"rgb({red},{gb},{gb})\" stroke=\"#333\" stroke-width=\"0.5\">\
             <title>{} index {:.3e} cap {}</title></rect>\n",
            r.x() * scale,
            y,
            r.width() * scale,
            r.height() * scale,
            rid,
            loads.index_of(topo, rid),
            topo.node(e.primary()).map(|n| n.capacity()).unwrap_or(0.0),
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Runs the experiment and emits `fig2_regions.csv`, `fig3_regions.csv`,
/// `fig2_map.svg`, `fig3_map.svg`, and `fig2_3_summary.csv`. Returns the
/// two variants' stats.
pub fn run(config: &ExperimentConfig) -> (DistributionStats, DistributionStats) {
    let mut rng = config.rng(23, 0);
    let (_, grid) = config.field_and_grid(&mut rng);

    const VARIANTS: [(Mode, &str, &str, &str); 2] = [
        (Mode::Basic, "basic", "fig2_regions", "fig2_map"),
        (Mode::DualPeer, "dual", "fig3_regions", "fig3_map"),
    ];
    // Build and render the two variants in parallel; all printing and
    // file writes happen below, serially in variant order, so the output
    // is identical to the serial loop.
    let rendered = par_trials(VARIANTS.len(), |i| {
        let (mode, variant, _, _) = VARIANTS[i];
        let topo = build_network(config, mode, NODES, 0);
        let loads = LoadMap::from_grid(&topo, &grid);
        let mut per_region = Table::new([
            "x",
            "y",
            "width",
            "height",
            "area",
            "load",
            "index",
            "primary_capacity",
            "full",
        ]);
        for (rid, e) in topo.regions() {
            let r = e.region();
            let cap = topo.node(e.primary()).map(|n| n.capacity()).unwrap_or(0.0);
            per_region.row([
                format!("{:.4}", r.x()),
                format!("{:.4}", r.y()),
                format!("{:.4}", r.width()),
                format!("{:.4}", r.height()),
                format!("{:.4}", r.area()),
                format!("{:.6}", loads.combined(rid)),
                format!("{:.6}", loads.index_of(&topo, rid)),
                format!("{cap}"),
                format!("{}", e.is_full()),
            ]);
        }
        let svg = svg_map(&topo, &grid, 640.0);
        let heat = heatmap(&topo, &grid, 64, 24);
        let stats = stats_for(variant, &topo, &grid);
        (per_region, svg, heat, topo.region_count(), stats)
    });

    let mut out = Vec::new();
    for (i, (per_region, svg, heat, regions, stats)) in rendered.into_iter().enumerate() {
        let (_, variant, csv, svg_name) = VARIANTS[i];
        config.emit(csv, &per_region);
        let svg_path = config.out_dir.join(format!("{svg_name}.svg"));
        match std::fs::write(&svg_path, svg) {
            Ok(()) => println!("-> wrote {}", svg_path.display()),
            Err(e) => eprintln!("-> FAILED to write {}: {e}", svg_path.display()),
        }
        println!("{variant} load heat map ({regions} regions):\n{heat}");
        out.push(stats);
    }

    let mut summary = Table::new([
        "variant",
        "regions",
        "area_mean",
        "area_std",
        "index_mean",
        "index_std",
        "index_max",
        "index_gini",
        "strong_owner_mean_area",
        "weak_owner_mean_area",
    ]);
    for s in &out {
        summary.row([
            s.variant.to_string(),
            s.regions.to_string(),
            format!("{:.4}", s.area.mean()),
            format!("{:.4}", s.area.std_dev()),
            format!("{:.6}", s.index.mean()),
            format!("{:.6}", s.index.std_dev()),
            format!("{:.6}", s.index.max()),
            format!("{:.4}", s.index_gini),
            format!("{:.4}", s.strong_area),
            format!("{:.4}", s.weak_area),
        ]);
    }
    config.emit("fig2_3_summary", &summary);
    let mut it = out.into_iter();
    (it.next().expect("basic"), it.next().expect("dual"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            trials: 1,
            out_dir: std::env::temp_dir().join("geogrid_fig23_test"),
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn dual_has_fewer_regions_and_capacity_tracking() {
        let config = quick_config();
        let (basic, dual) = run(&config);
        assert_eq!(basic.regions, NODES);
        assert!(dual.regions < basic.regions);
        // Figure 3 observation: strong owners hold bigger regions under
        // dual peer.
        if dual.strong_area > 0.0 && dual.weak_area > 0.0 {
            assert!(dual.strong_area > dual.weak_area);
        }
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }

    #[test]
    fn svg_map_is_well_formed() {
        let config = quick_config();
        let mut rng = config.rng(23, 0);
        let (_, grid) = config.field_and_grid(&mut rng);
        let topo = build_network(&config, Mode::Basic, 40, 0);
        let svg = svg_map(&topo, &grid, 320.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per region plus the background.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, topo.region_count() + 1);
    }

    #[test]
    fn heatmap_has_requested_shape() {
        let config = quick_config();
        let mut rng = config.rng(23, 0);
        let (_, grid) = config.field_and_grid(&mut rng);
        let topo = build_network(&config, Mode::Basic, 60, 0);
        let map = heatmap(&topo, &grid, 32, 8);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.chars().count() == 32));
    }
}
