//! # GeoGrid — a scalable geographic location service overlay
//!
//! A from-scratch Rust implementation of *"GeoGrid: A Scalable Location
//! Service Network"* (Zhang, Zhang, Liu — ICDCS 2007): a CAN-like overlay
//! whose 2-D coordinate space maps one-to-one to physical geography,
//! partitioned into rectangular regions owned by proxy nodes, with greedy
//! geographic routing, **dual-peer** region ownership for fail-over, and
//! eight **dynamic load-balance adaptation** mechanisms that chase static
//! and moving query hot spots.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`geometry`] — points, regions, split/merge, the neighbor predicate;
//! * [`workload`] — hot spots, capacity profiles, placements, queries;
//! * [`simnet`] — the deterministic discrete-event simulator;
//! * [`core`] — topology, routing, join protocols, workload index,
//!   adaptation, the sans-io engine, and the location-service layer;
//! * [`transport`] — tokio TCP runtime + wire codec + bootstrap server;
//! * [`metrics`] — the measurement substrate.
//!
//! ## Quick start
//!
//! ```
//! use geogrid::core::builder::{Mode, NetworkBuilder};
//! use geogrid::core::routing::{RouteOptions, Router};
//! use geogrid::geometry::{Point, Space};
//!
//! // A 100-node dual-peer GeoGrid over the paper's 64x64-mile plane.
//! let net = NetworkBuilder::new(Space::paper_evaluation(), 7)
//!     .mode(Mode::DualPeer)
//!     .build(100);
//! let topo = net.topology();
//!
//! // Route a location query toward its target coordinate.
//! let entry = topo.first_region()?;
//! let mut router = Router::new();
//! router.route(topo, entry, Point::new(12.0, 51.0), &RouteOptions::greedy())?;
//! println!("{} hops to the executor region", router.hop_count());
//! # Ok::<(), geogrid::core::CoreError>(())
//! ```
//!
//! See `examples/` for runnable scenarios (a metro traffic monitor, the
//! paper's stadium-parking hot spot, a live TCP deployment) and
//! `crates/bench` for the harness regenerating every figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use geogrid_core as core;
pub use geogrid_geometry as geometry;
pub use geogrid_metrics as metrics;
pub use geogrid_simnet as simnet;
pub use geogrid_transport as transport;
pub use geogrid_workload as workload;
