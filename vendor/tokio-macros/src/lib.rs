//! Offline API-compatible subset of `tokio-macros` (see vendor/README.md).
//!
//! Provides the `#[tokio::main]` and `#[tokio::test]` attribute macros:
//! each rewrites an `async fn` into a plain `fn` whose body drives the
//! original body to completion on the shim runtime's `block_on`. No
//! `syn`/`quote` (the offline environment has neither): the item is
//! re-assembled at the token level — the final brace group is the body,
//! everything before it is the signature minus the `async` qualifier.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Splits an `async fn` item into (signature tokens without `async`, body
/// group text). Returns `None` if the item has no brace-delimited body.
fn split_async_fn(item: TokenStream) -> Option<(String, String)> {
    let trees: Vec<TokenTree> = item.into_iter().collect();
    let body_idx = trees
        .iter()
        .rposition(|t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace))?;
    // Re-collect into a TokenStream so multi-character punctuation
    // (`->`, `::`) keeps its joint spacing when stringified.
    let sig: TokenStream = trees[..body_idx]
        .iter()
        .filter(|t| !matches!(t, TokenTree::Ident(id) if id.to_string() == "async"))
        .cloned()
        .collect();
    let body = trees[body_idx].to_string();
    Some((sig.to_string(), body))
}

fn wrap(item: TokenStream, test: bool) -> TokenStream {
    let Some((sig, body)) = split_async_fn(item) else {
        return r#"compile_error!("expected an async fn with a body");"#
            .parse()
            .expect("literal parses");
    };
    let attr = if test {
        "#[::core::prelude::v1::test]"
    } else {
        ""
    };
    format!("{attr} {sig} {{ ::tokio::runtime::block_on(async move {body}) }}")
        .parse()
        .expect("reassembled item parses")
}

/// Runs an `async fn main` (or any async entry point) on the shim
/// runtime: `#[tokio::main]`.
#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    wrap(item, false)
}

/// Marks an `async fn` as a test driven by the shim runtime:
/// `#[tokio::test]`.
#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    wrap(item, true)
}
