//! Async IO traits and helpers. The trait shapes diverge from upstream
//! in one deliberate way: `poll_read`/`poll_write` take `&mut self`
//! instead of `Pin<&mut Self>` + `ReadBuf`, which keeps every
//! implementation `unsafe`-free while remaining source-compatible with
//! the `reader.read_exact(..).await` / `writer.write_all(..).await` call
//! sites the workspace uses.

use std::collections::VecDeque;
use std::future::{poll_fn, Future};
use std::io;
use std::sync::{Arc, Mutex, PoisonError};
use std::task::{Context, Poll, Waker};

/// A non-blocking byte source.
pub trait AsyncRead: Unpin {
    /// Attempts to read into `buf`; `Ok(0)` means EOF.
    fn poll_read(&mut self, cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>>;
}

/// A non-blocking byte sink.
pub trait AsyncWrite: Unpin {
    /// Attempts to write from `buf`, returning how many bytes were
    /// accepted.
    fn poll_write(&mut self, cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>>;

    /// Attempts to flush buffered data to the underlying sink.
    fn poll_flush(&mut self, cx: &mut Context<'_>) -> Poll<io::Result<()>>;
}

impl<T: AsyncRead + ?Sized> AsyncRead for &mut T {
    fn poll_read(&mut self, cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>> {
        (**self).poll_read(cx, buf)
    }
}

impl<T: AsyncWrite + ?Sized> AsyncWrite for &mut T {
    fn poll_write(&mut self, cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
        (**self).poll_write(cx, buf)
    }

    fn poll_flush(&mut self, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        (**self).poll_flush(cx)
    }
}

/// Convenience combinators over [`AsyncRead`].
pub trait AsyncReadExt: AsyncRead {
    /// Reads exactly `buf.len()` bytes, erroring with `UnexpectedEof` if
    /// the source ends first.
    fn read_exact<'a>(
        &'a mut self,
        buf: &'a mut [u8],
    ) -> impl Future<Output = io::Result<usize>> + 'a
    where
        Self: Sized,
    {
        async move {
            let mut filled = 0;
            poll_fn(|cx| {
                while filled < buf.len() {
                    match self.poll_read(cx, &mut buf[filled..]) {
                        Poll::Ready(Ok(0)) => {
                            return Poll::Ready(Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "early eof",
                            )))
                        }
                        Poll::Ready(Ok(n)) => filled += n,
                        Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                        Poll::Pending => return Poll::Pending,
                    }
                }
                Poll::Ready(Ok(filled))
            })
            .await
        }
    }
}

impl<T: AsyncRead> AsyncReadExt for T {}

/// Convenience combinators over [`AsyncWrite`].
pub trait AsyncWriteExt: AsyncWrite {
    /// Writes the entire buffer.
    fn write_all<'a>(&'a mut self, buf: &'a [u8]) -> impl Future<Output = io::Result<()>> + 'a
    where
        Self: Sized,
    {
        async move {
            let mut written = 0;
            poll_fn(|cx| {
                while written < buf.len() {
                    match self.poll_write(cx, &buf[written..]) {
                        Poll::Ready(Ok(0)) => {
                            return Poll::Ready(Err(io::Error::new(
                                io::ErrorKind::WriteZero,
                                "write returned zero bytes",
                            )))
                        }
                        Poll::Ready(Ok(n)) => written += n,
                        Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                        Poll::Pending => return Poll::Pending,
                    }
                }
                Poll::Ready(Ok(()))
            })
            .await
        }
    }

    /// Flushes the sink.
    fn flush(&mut self) -> impl Future<Output = io::Result<()>> + '_
    where
        Self: Sized,
    {
        async move { poll_fn(|cx| self.poll_flush(cx)).await }
    }
}

impl<T: AsyncWrite> AsyncWriteExt for T {}

// ---------------------------------------------------------------------------
// In-memory duplex pipe (used by frame-codec tests).
// ---------------------------------------------------------------------------

struct PipeHalf {
    buf: VecDeque<u8>,
    capacity: usize,
    closed: bool,
    read_waker: Option<Waker>,
    write_waker: Option<Waker>,
}

impl PipeHalf {
    fn new(capacity: usize) -> Self {
        Self {
            buf: VecDeque::new(),
            capacity,
            closed: false,
            read_waker: None,
            write_waker: None,
        }
    }

    fn close(&mut self) {
        self.closed = true;
        if let Some(w) = self.read_waker.take() {
            w.wake();
        }
        if let Some(w) = self.write_waker.take() {
            w.wake();
        }
    }
}

type SharedPipe = Arc<Mutex<PipeHalf>>;

fn lock(pipe: &SharedPipe) -> std::sync::MutexGuard<'_, PipeHalf> {
    pipe.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One end of an in-memory bidirectional pipe; see [`duplex`].
pub struct DuplexStream {
    read: SharedPipe,
    write: SharedPipe,
}

/// Creates a connected pair of in-memory streams, each direction
/// buffering at most `max_buf_size` bytes. Dropping either end closes
/// both directions: the peer reads EOF after draining and writes fail
/// with `BrokenPipe` (upstream semantics).
pub fn duplex(max_buf_size: usize) -> (DuplexStream, DuplexStream) {
    let a_to_b: SharedPipe = Arc::new(Mutex::new(PipeHalf::new(max_buf_size)));
    let b_to_a: SharedPipe = Arc::new(Mutex::new(PipeHalf::new(max_buf_size)));
    (
        DuplexStream {
            read: Arc::clone(&b_to_a),
            write: Arc::clone(&a_to_b),
        },
        DuplexStream {
            read: a_to_b,
            write: b_to_a,
        },
    )
}

impl AsyncRead for DuplexStream {
    fn poll_read(&mut self, cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>> {
        let mut pipe = lock(&self.read);
        if !pipe.buf.is_empty() {
            let n = pipe.buf.len().min(buf.len());
            for slot in buf.iter_mut().take(n) {
                *slot = pipe.buf.pop_front().expect("len checked");
            }
            if let Some(w) = pipe.write_waker.take() {
                w.wake();
            }
            return Poll::Ready(Ok(n));
        }
        if pipe.closed {
            return Poll::Ready(Ok(0));
        }
        pipe.read_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl AsyncWrite for DuplexStream {
    fn poll_write(&mut self, cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
        let mut pipe = lock(&self.write);
        if pipe.closed {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed",
            )));
        }
        let space = pipe.capacity.saturating_sub(pipe.buf.len());
        if space == 0 {
            pipe.write_waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let n = space.min(buf.len());
        pipe.buf.extend(&buf[..n]);
        if let Some(w) = pipe.read_waker.take() {
            w.wake();
        }
        Poll::Ready(Ok(n))
    }

    fn poll_flush(&mut self, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(Ok(()))
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        lock(&self.read).close();
        lock(&self.write).close();
    }
}

// ---------------------------------------------------------------------------
// Async stdin line input (used by the geogrid-node REPL).
// ---------------------------------------------------------------------------

/// Handle to process stdin; see [`stdin`]. Only line-oriented access via
/// [`BufReader`] + [`AsyncBufReadExt::lines`] is supported.
pub struct Stdin {
    rx: std::sync::mpsc::Receiver<io::Result<String>>,
}

/// Returns an async handle to stdin. A dedicated thread performs the
/// blocking `read_line` calls and forwards complete lines over a
/// channel, so awaiting a line never blocks the async task.
pub fn stdin() -> Stdin {
    let (tx, rx) = std::sync::mpsc::channel();
    // If thread spawning fails the channel closes and readers see EOF.
    let _ = std::thread::Builder::new()
        .name("tokio-shim-stdin".into())
        .spawn(move || {
            use std::io::BufRead;
            let input = std::io::stdin();
            let mut line = String::new();
            loop {
                line.clear();
                match input.lock().read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {
                        let trimmed = line.trim_end_matches(['\n', '\r']).to_string();
                        if tx.send(Ok(trimmed)).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });
    Stdin { rx }
}

/// Buffering adapter. Under this shim it only enables the
/// [`AsyncBufReadExt::lines`] API over [`Stdin`] (which already buffers
/// per line on its reader thread).
pub struct BufReader<R> {
    inner: R,
}

impl<R> BufReader<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }
}

/// Line-splitting extension; see [`BufReader`].
pub trait AsyncBufReadExt: Sized {
    /// Consumes the reader, yielding a [`Lines`] stream.
    fn lines(self) -> Lines<Self> {
        Lines { src: self }
    }
}

impl AsyncBufReadExt for BufReader<Stdin> {}

/// Stream of input lines; see [`AsyncBufReadExt::lines`].
pub struct Lines<R> {
    src: R,
}

impl Lines<BufReader<Stdin>> {
    /// Returns the next line without its terminator, or `None` on EOF.
    pub async fn next_line(&mut self) -> io::Result<Option<String>> {
        poll_fn(|_cx| match self.src.inner.rx.try_recv() {
            Ok(Ok(line)) => Poll::Ready(Ok(Some(line))),
            Ok(Err(e)) => Poll::Ready(Err(e)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Poll::Pending,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Poll::Ready(Ok(None)),
        })
        .await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on;

    #[test]
    fn duplex_round_trips_across_tasks() {
        block_on(async {
            let (mut a, mut b) = duplex(8);
            let writer = crate::spawn(async move {
                b.write_all(b"hello duplex world").await.expect("writes");
                b.flush().await.expect("flushes");
                // Drop closes the pipe so the reader sees EOF.
            });
            let mut buf = [0u8; 18];
            a.read_exact(&mut buf).await.expect("reads");
            assert_eq!(&buf, b"hello duplex world");
            writer.await.expect("writer completes");
            let mut end = [0u8; 1];
            let err = a.read_exact(&mut end).await.expect_err("eof after drop");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        });
    }

    #[test]
    fn duplex_write_after_peer_drop_is_broken_pipe() {
        block_on(async {
            let (mut a, b) = duplex(8);
            drop(b);
            let err = a.write_all(b"x").await.expect_err("peer gone");
            assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        });
    }

    #[test]
    fn read_exact_assembles_partial_reads() {
        // A reader that yields one byte per poll.
        struct OneByte(u8);
        impl AsyncRead for OneByte {
            fn poll_read(
                &mut self,
                _cx: &mut Context<'_>,
                buf: &mut [u8],
            ) -> Poll<io::Result<usize>> {
                buf[0] = self.0;
                self.0 += 1;
                Poll::Ready(Ok(1))
            }
        }
        let mut buf = [0u8; 4];
        block_on(OneByte(1).read_exact(&mut buf)).expect("fills");
        assert_eq!(buf, [1, 2, 3, 4]);
    }
}
