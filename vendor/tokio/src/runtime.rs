//! The shim "runtime": [`block_on`] drives a future on the current
//! thread, parking between polls. There is no scheduler — each task owns
//! its thread (see crate docs).

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

/// How long a suspended task sleeps between polls when no wake arrives.
/// This bound is the shim's universal progress guarantee: timers fire and
/// sockets are re-checked within one tick even if nothing wakes them.
const POLL_TICK: Duration = Duration::from_millis(1);

#[derive(Default)]
struct ParkState {
    woken: Mutex<bool>,
    cv: Condvar,
}

impl Wake for ParkState {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        *self.woken.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_one();
    }
}

/// A per-poll-loop parker whose [`Waker`] ends the park early. Public
/// because the [`select!`](crate::select) macro expansion instantiates
/// one; not part of the upstream tokio API.
#[derive(Default)]
pub struct Parker {
    state: Arc<ParkState>,
}

impl Parker {
    /// Creates a parker in the unwoken state.
    pub fn new() -> Self {
        Self::default()
    }

    /// A waker that ends this parker's current (or next) park.
    pub fn waker(&self) -> Waker {
        Waker::from(Arc::clone(&self.state))
    }

    /// Parks for at most [`POLL_TICK`], returning early if woken; clears
    /// the woken flag so the next park blocks again.
    pub fn park_brief(&self) {
        let mut woken = self
            .state
            .woken
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if !*woken {
            // Timeout (not a missed wake) is the normal exit: the 1 ms
            // re-poll is what stands in for a reactor.
            let (guard, _) = self
                .state
                .cv
                .wait_timeout(woken, POLL_TICK)
                .unwrap_or_else(PoisonError::into_inner);
            woken = guard;
        }
        *woken = false;
    }
}

/// Runs `future` to completion on the calling thread. This is the only
/// entry point into the shim runtime; `#[tokio::main]` and
/// `#[tokio::test]` expand to a call to it, and [`crate::spawn`] calls it
/// on the task's fresh thread.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future: Pin<Box<F>> = Box::pin(future);
    let parker = Parker::new();
    let waker = parker.waker();
    let mut cx = Context::from_waker(&waker);
    loop {
        if let Poll::Ready(value) = future.as_mut().poll(&mut cx) {
            return value;
        }
        parker.park_brief();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_returns_value() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_drives_pending_future() {
        let mut polls = 0;
        let out = block_on(std::future::poll_fn(|_cx| {
            polls += 1;
            if polls < 3 {
                Poll::Pending
            } else {
                Poll::Ready(polls)
            }
        }));
        assert_eq!(out, 3);
    }

    #[test]
    fn waker_ends_park_early() {
        let parker = Parker::new();
        let waker = parker.waker();
        let t = std::thread::spawn(move || waker.wake());
        // Either order works: a pre-arrived wake returns immediately, a
        // late one interrupts the timed wait.
        parker.park_brief();
        t.join().unwrap();
    }
}
