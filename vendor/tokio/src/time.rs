//! Timers built on deadline checks: every future here just compares
//! `Instant::now()` against a stored deadline on each poll. No timer
//! wheel — the runtime re-polls suspended tasks every millisecond, so a
//! deadline is observed within ~1 ms of expiry.

use std::future::{poll_fn, Future};
use std::task::Poll;
use std::time::Duration;

pub use std::time::Instant;

/// Sleeps for at least `duration` (1 ms polling granularity).
pub async fn sleep(duration: Duration) {
    let deadline = Instant::now() + duration;
    poll_fn(|_cx| {
        if Instant::now() >= deadline {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    })
    .await
}

/// Error returned by [`timeout`] when the deadline passes first.
#[derive(Debug, PartialEq, Eq)]
pub struct Elapsed(());

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Awaits `future` for at most `duration`; on expiry the future is
/// dropped (cancelled) and `Err(Elapsed)` is returned.
pub async fn timeout<F: Future>(duration: Duration, future: F) -> Result<F::Output, Elapsed> {
    let deadline = Instant::now() + duration;
    let mut future = Box::pin(future);
    poll_fn(move |cx| {
        if let Poll::Ready(v) = future.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if Instant::now() >= deadline {
            return Poll::Ready(Err(Elapsed(())));
        }
        Poll::Pending
    })
    .await
}

/// What [`Interval::tick`] does when a tick deadline was missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissedTickBehavior {
    /// Fire missed ticks back-to-back until caught up (upstream default).
    Burst,
    /// Skip missed ticks; next fires one full period after the late tick.
    Delay,
    /// Skip missed ticks; next fires at the next period boundary.
    Skip,
}

/// Creates an [`Interval`] whose first tick completes immediately
/// (upstream semantics).
pub fn interval(period: Duration) -> Interval {
    assert!(period > Duration::ZERO, "interval period must be non-zero");
    Interval {
        next: Instant::now(),
        period,
        behavior: MissedTickBehavior::Burst,
    }
}

/// A repeating timer yielding at (at least) `period` spacing.
#[derive(Debug)]
pub struct Interval {
    next: Instant,
    period: Duration,
    behavior: MissedTickBehavior,
}

impl Interval {
    /// Sets how missed ticks are handled (see [`MissedTickBehavior`]).
    pub fn set_missed_tick_behavior(&mut self, behavior: MissedTickBehavior) {
        self.behavior = behavior;
    }

    /// Completes at the next tick deadline and schedules the following
    /// one.
    pub async fn tick(&mut self) -> Instant {
        let deadline = self.next;
        poll_fn(|_cx| {
            if Instant::now() >= deadline {
                Poll::Ready(())
            } else {
                Poll::Pending
            }
        })
        .await;
        let now = Instant::now();
        self.next = match self.behavior {
            MissedTickBehavior::Burst => deadline + self.period,
            MissedTickBehavior::Delay => now + self.period,
            MissedTickBehavior::Skip => {
                // Advance whole periods until the deadline is in the future.
                let mut next = deadline + self.period;
                while next <= now {
                    next += self.period;
                }
                next
            }
        };
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on;

    #[test]
    fn sleep_waits_roughly_the_duration() {
        let start = Instant::now();
        block_on(sleep(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn timeout_passes_fast_futures_through() {
        let out = block_on(timeout(Duration::from_secs(1), async { 5 }));
        assert_eq!(out, Ok(5));
    }

    #[test]
    fn timeout_cuts_off_slow_futures() {
        let out = block_on(timeout(
            Duration::from_millis(10),
            sleep(Duration::from_secs(60)),
        ));
        assert_eq!(out, Err(Elapsed(())));
    }

    #[test]
    fn interval_first_tick_is_immediate_then_spaced() {
        block_on(async {
            let start = Instant::now();
            let mut iv = interval(Duration::from_millis(15));
            iv.set_missed_tick_behavior(MissedTickBehavior::Delay);
            iv.tick().await;
            assert!(start.elapsed() < Duration::from_millis(10));
            iv.tick().await;
            assert!(start.elapsed() >= Duration::from_millis(15));
        });
    }
}
