//! Task spawning: each spawned task gets its own OS thread running
//! [`crate::runtime::block_on`]. Completion is delivered through a
//! [`crate::sync::oneshot`] channel, which is what makes [`JoinHandle`]
//! awaitable.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::sync::oneshot;

/// Error returned when the task behind a [`JoinHandle`] panicked (its
/// thread died without sending a result).
#[derive(Debug)]
pub struct JoinError(());

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("task panicked")
    }
}

impl std::error::Error for JoinError {}

/// An owned handle to await a spawned task's output. Dropping the handle
/// detaches the task (it keeps running), matching upstream semantics.
#[derive(Debug)]
pub struct JoinHandle<T> {
    rx: oneshot::Receiver<T>,
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.rx)
            .poll(cx)
            .map(|r| r.map_err(|_| JoinError(())))
    }
}

/// Spawns `future` as a new task (a dedicated thread under this shim).
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let (tx, rx) = oneshot::channel();
    std::thread::Builder::new()
        .name("tokio-shim-task".into())
        .spawn(move || {
            let out = crate::runtime::block_on(future);
            let _ = tx.send(out);
        })
        .expect("spawning a task thread succeeds");
    JoinHandle { rx }
}

/// Runs a blocking closure off the async control flow. Under the
/// thread-per-task shim this is just another thread, but call sites keep
/// the upstream-correct shape: blocking work never executes inside an
/// `async fn` body.
pub fn spawn_blocking<F, R>(f: F) -> JoinHandle<R>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let (tx, rx) = oneshot::channel();
    std::thread::Builder::new()
        .name("tokio-shim-blocking".into())
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawning a blocking thread succeeds");
    JoinHandle { rx }
}

#[cfg(test)]
mod tests {
    use crate::runtime::block_on;

    #[test]
    fn spawn_and_join() {
        let out = block_on(async {
            let h = crate::spawn(async { 7u32 * 6 });
            h.await.expect("task completes")
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn spawn_blocking_and_join() {
        let out = block_on(async {
            let h = super::spawn_blocking(|| "done".to_string());
            h.await.expect("blocking task completes")
        });
        assert_eq!(out, "done");
    }

    #[test]
    fn panicked_task_yields_join_error() {
        let res = block_on(async {
            let h = crate::spawn(async { panic!("boom") });
            h.await
        });
        assert!(res.is_err());
    }
}
