//! Async channels: bounded multi-producer [`mpsc`] and single-shot
//! [`oneshot`]. Both register wakers so cross-thread sends wake the
//! waiting task immediately; the runtime's 1 ms re-poll is only a
//! fallback.

/// Bounded multi-producer, single-consumer channel.
pub mod mpsc {
    use std::collections::VecDeque;
    use std::future::poll_fn;
    use std::sync::{Arc, Mutex, PoisonError};
    use std::task::{Poll, Waker};

    struct State<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receiver_alive: bool,
        recv_waker: Option<Waker>,
        send_wakers: Vec<Waker>,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
    }

    impl<T> Shared<T> {
        fn state(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when the receiver is gone; the
    /// unsent value is handed back.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("channel closed")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("mpsc::Sender")
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("mpsc::Receiver")
        }
    }

    /// Creates a bounded channel with room for `capacity` queued values.
    pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "mpsc capacity must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receiver_alive: true,
                recv_waker: None,
                send_wakers: Vec::new(),
            }),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends `value`, waiting for queue space; errors only if the
        /// receiver has been dropped.
        pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
            // `Option` slot: the closure may be polled again after the
            // value is consumed.
            let mut slot = Some(value);
            poll_fn(|cx| {
                let mut st = self.shared.state();
                if !st.receiver_alive {
                    return Poll::Ready(Err(SendError(
                        slot.take().expect("send polled after completion"),
                    )));
                }
                if st.queue.len() < st.capacity {
                    st.queue
                        .push_back(slot.take().expect("send polled after completion"));
                    if let Some(w) = st.recv_waker.take() {
                        w.wake();
                    }
                    return Poll::Ready(Ok(()));
                }
                st.send_wakers.push(cx.waker().clone());
                Poll::Pending
            })
            .await
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state();
            st.senders -= 1;
            if st.senders == 0 {
                // Receiver must observe disconnection promptly.
                if let Some(w) = st.recv_waker.take() {
                    w.wake();
                }
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next value; `None` once every sender is dropped
        /// and the queue is drained.
        pub async fn recv(&mut self) -> Option<T> {
            poll_fn(|cx| {
                let mut st = self.shared.state();
                if let Some(v) = st.queue.pop_front() {
                    for w in st.send_wakers.drain(..) {
                        w.wake();
                    }
                    return Poll::Ready(Some(v));
                }
                if st.senders == 0 {
                    return Poll::Ready(None);
                }
                st.recv_waker = Some(cx.waker().clone());
                Poll::Pending
            })
            .await
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state();
            st.receiver_alive = false;
            // Blocked senders must observe the close and fail fast.
            for w in st.send_wakers.drain(..) {
                w.wake();
            }
        }
    }
}

/// Single-value, single-use channel.
pub mod oneshot {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex, PoisonError};
    use std::task::{Context, Poll, Waker};

    struct State<T> {
        value: Option<T>,
        sender_dropped: bool,
        receiver_alive: bool,
        waker: Option<Waker>,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
    }

    impl<T> Shared<T> {
        fn state(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned when awaiting a [`Receiver`] whose sender was
    /// dropped without sending.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError(());

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("oneshot sender dropped without sending")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half; consumed by [`Sender::send`].
    #[derive(Debug)]
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Shared<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("oneshot::Shared")
        }
    }

    /// Receiving half; a future yielding `Result<T, RecvError>`.
    #[derive(Debug)]
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a oneshot channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                value: None,
                sender_dropped: false,
                receiver_alive: true,
                waker: None,
            }),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Delivers `value`; errors (returning it) if the receiver is gone.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut st = self.shared.state();
            if !st.receiver_alive {
                return Err(value);
            }
            st.value = Some(value);
            if let Some(w) = st.waker.take() {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state();
            st.sender_dropped = true;
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, RecvError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut st = self.shared.state();
            if let Some(v) = st.value.take() {
                return Poll::Ready(Ok(v));
            }
            if st.sender_dropped {
                return Poll::Ready(Err(RecvError(())));
            }
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state().receiver_alive = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::block_on;

    #[test]
    fn mpsc_round_trip_across_tasks() {
        block_on(async {
            let (tx, mut rx) = super::mpsc::channel::<u32>(4);
            let sender = crate::spawn(async move {
                for i in 0..10 {
                    tx.send(i).await.expect("receiver alive");
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            sender.await.expect("sender task completes");
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn mpsc_send_blocks_at_capacity_then_resumes() {
        block_on(async {
            let (tx, mut rx) = super::mpsc::channel::<u32>(1);
            tx.send(1).await.expect("space available");
            let pusher = crate::spawn(async move {
                tx.send(2).await.expect("unblocks when reader drains");
            });
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, Some(2));
            pusher.await.expect("pusher completes");
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn mpsc_send_fails_after_receiver_drop() {
        block_on(async {
            let (tx, rx) = super::mpsc::channel::<u32>(1);
            drop(rx);
            assert!(tx.send(5).await.is_err());
        });
    }

    #[test]
    fn oneshot_round_trip() {
        block_on(async {
            let (tx, rx) = super::oneshot::channel();
            tx.send(9u8).expect("receiver alive");
            assert_eq!(rx.await, Ok(9));
        });
    }

    #[test]
    fn oneshot_sender_drop_errors() {
        block_on(async {
            let (tx, rx) = super::oneshot::channel::<u8>();
            drop(tx);
            assert!(rx.await.is_err());
        });
    }

    #[test]
    fn oneshot_send_to_dropped_receiver_returns_value() {
        let (tx, rx) = super::oneshot::channel::<u8>();
        drop(rx);
        assert_eq!(tx.send(3), Err(3));
    }
}
