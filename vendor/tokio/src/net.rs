//! TCP over non-blocking `std::net` sockets. `WouldBlock` maps to
//! `Poll::Pending`; the runtime's 1 ms re-poll stands in for readiness
//! notification, so no OS event queue is needed. `connect` itself runs
//! blocking on the task's own thread — acceptable under thread-per-task,
//! and instant for the loopback addresses the workspace uses.

use std::future::poll_fn;
use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::task::{Context, Poll};

use crate::io::{AsyncRead, AsyncWrite};

fn retry_later(e: &io::Error) -> bool {
    // Interrupted is safe to treat like WouldBlock: the runtime re-polls
    // within a millisecond.
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
    )
}

/// A listening TCP socket.
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Binds to `addr` and starts listening.
    pub async fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// The bound local address (gives the real port after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accepts the next inbound connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        poll_fn(|_cx| match self.inner.accept() {
            Ok((stream, peer)) => Poll::Ready(TcpStream::from_std(stream).map(|s| (s, peer))),
            Err(e) if retry_later(&e) => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }
}

/// A connected TCP stream implementing [`AsyncRead`] + [`AsyncWrite`].
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    fn from_std(inner: std::net::TcpStream) -> io::Result<TcpStream> {
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    /// Opens a connection to `addr`.
    pub async fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
        TcpStream::from_std(std::net::TcpStream::connect(addr)?)
    }

    /// The remote peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local end's address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl AsyncRead for TcpStream {
    fn poll_read(&mut self, _cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>> {
        match self.inner.read(buf) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if retry_later(&e) => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

impl AsyncWrite for TcpStream {
    fn poll_write(&mut self, _cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
        match self.inner.write(buf) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if retry_later(&e) => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }

    fn poll_flush(&mut self, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        match self.inner.flush() {
            Ok(()) => Poll::Ready(Ok(())),
            Err(e) if retry_later(&e) => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{AsyncReadExt, AsyncWriteExt};
    use crate::runtime::block_on;

    #[test]
    fn loopback_round_trip() {
        block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0".parse().expect("addr parses"))
                .await
                .expect("binds");
            let addr = listener.local_addr().expect("has local addr");
            let client = crate::spawn(async move {
                let mut s = TcpStream::connect(addr).await.expect("connects");
                s.write_all(b"ping").await.expect("writes");
                let mut buf = [0u8; 4];
                s.read_exact(&mut buf).await.expect("reads reply");
                buf
            });
            let (mut server, _peer) = listener.accept().await.expect("accepts");
            let mut buf = [0u8; 4];
            server.read_exact(&mut buf).await.expect("reads");
            assert_eq!(&buf, b"ping");
            server.write_all(b"pong").await.expect("replies");
            server.flush().await.expect("flushes");
            let reply = client.await.expect("client completes");
            assert_eq!(&reply, b"pong");
        });
    }

    #[test]
    fn read_after_peer_close_is_eof() {
        block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0".parse().expect("addr parses"))
                .await
                .expect("binds");
            let addr = listener.local_addr().expect("has local addr");
            let client = crate::spawn(async move {
                let _s = TcpStream::connect(addr).await.expect("connects");
                // Dropped immediately: the server must observe EOF.
            });
            let (mut server, _peer) = listener.accept().await.expect("accepts");
            client.await.expect("client completes");
            let mut buf = [0u8; 1];
            let err = server.read_exact(&mut buf).await.expect_err("eof");
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        });
    }
}
