//! Offline API-compatible subset of the `tokio` crate (see
//! vendor/README.md).
//!
//! The real tokio multiplexes many tasks onto a few threads with an epoll
//! reactor. This shim keeps the *API* and inverts the implementation to
//! stay small and dependency-free: **one OS thread per task**, and every
//! suspended task re-polls its future at least once per millisecond
//! ([`runtime::Parker::park_brief`]). Wakers still work — a wake ends the
//! park immediately — but correctness never depends on them: timers and
//! non-blocking sockets make progress because the 1 ms re-poll observes
//! them, so no reactor or timer wheel is needed. The cost is ~1k polls
//! per second per suspended task and 1 ms of scheduling latency, both
//! irrelevant at the scale of the transport tests this crate serves.
//!
//! Provided surface (exactly what `crates/transport` uses):
//! `spawn`/`JoinHandle`, `task::spawn_blocking`, `net::{TcpListener,
//! TcpStream}`, `io::{AsyncRead, AsyncWrite, AsyncReadExt, AsyncWriteExt,
//! duplex, stdin, BufReader, AsyncBufReadExt}`, `sync::{mpsc, oneshot}`,
//! `time::{sleep, timeout, interval, Instant, MissedTickBehavior}`, the
//! [`select!`] macro, and the `#[tokio::main]`/`#[tokio::test]`
//! attribute macros.

pub mod io;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::{spawn, JoinHandle};
pub use tokio_macros::{main, test};

/// Waits on multiple concurrent branches, running the body of the first
/// branch whose future completes; the other branch futures are dropped
/// before the body runs (so bodies may freely re-borrow what the futures
/// borrowed). Supports the two- and three-branch forms the workspace
/// uses, with block bodies:
///
/// ```ignore
/// tokio::select! {
///     v = rx.recv() => { ... }
///     _ = ticker.tick() => { ... }
/// }
/// ```
///
/// Unlike upstream, the select loop itself blocks its task's thread
/// (fine under the thread-per-task runtime) and polls in declaration
/// order (biased), re-polling at least every millisecond.
#[macro_export]
macro_rules! select {
    (
        $p1:pat = $f1:expr => $b1:block $(,)?
        $p2:pat = $f2:expr => $b2:block $(,)?
    ) => {{
        let mut __sel_r1 = ::core::option::Option::None;
        let mut __sel_r2 = ::core::option::Option::None;
        {
            let mut __sel_f1 = ::std::boxed::Box::pin($f1);
            let mut __sel_f2 = ::std::boxed::Box::pin($f2);
            let __sel_parker = $crate::runtime::Parker::new();
            let __sel_waker = __sel_parker.waker();
            let mut __sel_cx = ::core::task::Context::from_waker(&__sel_waker);
            loop {
                if let ::core::task::Poll::Ready(__v) =
                    ::core::future::Future::poll(__sel_f1.as_mut(), &mut __sel_cx)
                {
                    __sel_r1 = ::core::option::Option::Some(__v);
                    break;
                }
                if let ::core::task::Poll::Ready(__v) =
                    ::core::future::Future::poll(__sel_f2.as_mut(), &mut __sel_cx)
                {
                    __sel_r2 = ::core::option::Option::Some(__v);
                    break;
                }
                __sel_parker.park_brief();
            }
        }
        if let ::core::option::Option::Some($p1) = __sel_r1 {
            $b1
        } else if let ::core::option::Option::Some($p2) = __sel_r2 {
            $b2
        } else {
            ::core::unreachable!()
        }
    }};
    (
        $p1:pat = $f1:expr => $b1:block $(,)?
        $p2:pat = $f2:expr => $b2:block $(,)?
        $p3:pat = $f3:expr => $b3:block $(,)?
    ) => {{
        let mut __sel_r1 = ::core::option::Option::None;
        let mut __sel_r2 = ::core::option::Option::None;
        let mut __sel_r3 = ::core::option::Option::None;
        {
            let mut __sel_f1 = ::std::boxed::Box::pin($f1);
            let mut __sel_f2 = ::std::boxed::Box::pin($f2);
            let mut __sel_f3 = ::std::boxed::Box::pin($f3);
            let __sel_parker = $crate::runtime::Parker::new();
            let __sel_waker = __sel_parker.waker();
            let mut __sel_cx = ::core::task::Context::from_waker(&__sel_waker);
            loop {
                if let ::core::task::Poll::Ready(__v) =
                    ::core::future::Future::poll(__sel_f1.as_mut(), &mut __sel_cx)
                {
                    __sel_r1 = ::core::option::Option::Some(__v);
                    break;
                }
                if let ::core::task::Poll::Ready(__v) =
                    ::core::future::Future::poll(__sel_f2.as_mut(), &mut __sel_cx)
                {
                    __sel_r2 = ::core::option::Option::Some(__v);
                    break;
                }
                if let ::core::task::Poll::Ready(__v) =
                    ::core::future::Future::poll(__sel_f3.as_mut(), &mut __sel_cx)
                {
                    __sel_r3 = ::core::option::Option::Some(__v);
                    break;
                }
                __sel_parker.park_brief();
            }
        }
        if let ::core::option::Option::Some($p1) = __sel_r1 {
            $b1
        } else if let ::core::option::Option::Some($p2) = __sel_r2 {
            $b2
        } else if let ::core::option::Option::Some($p3) = __sel_r3 {
            $b3
        } else {
            ::core::unreachable!()
        }
    }};
}
