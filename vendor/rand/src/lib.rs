//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal, API-compatible subset of `rand`
//! 0.9 (see `vendor/README.md`). [`rngs::SmallRng`] is implemented as
//! xoshiro256++ seeded through SplitMix64 — the same generator family
//! upstream `SmallRng` uses on 64-bit targets — so streams are
//! high-quality and deterministic per seed, though not guaranteed
//! bit-identical to upstream.
//!
//! Supported surface:
//!
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`]
//! * [`Rng::random`] for the primitive types the workspace samples
//! * [`Rng::random_range`] over `Range` / `RangeInclusive` of ints and floats
//! * [`Rng::random_bool`]

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the algorithm
    /// upstream `rand_core` documents for this method) and constructs
    /// the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that [`Rng::random`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types that [`Rng::random_range`] can sample over an interval.
pub trait SampleUniform: PartialOrd + Copy {
    /// A uniform draw from `[low, high)` (`high` included when
    /// `inclusive`). Callers guarantee the range is non-empty.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128 + if inclusive { 1 } else { 0 };
                let span = (hi - lo) as u128;
                if span == 0 {
                    // Only reachable for the full u128 span, which no
                    // supported type produces; sample raw bits.
                    return rng.next_u64() as $t;
                }
                // Widening-multiply range reduction (Lemire); the bias is
                // at most span / 2^64, negligible for simulation use.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::standard(rng);
                let v = low + (high - low) * unit;
                // Guard against rounding past the upper bound: clamp for
                // inclusive ranges, fall back to `low` (always in range,
                // measure-zero bias) for exclusive ones.
                if inclusive {
                    v.min(high)
                } else if v >= high {
                    low
                } else {
                    v
                }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Interval forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_in(rng, low, high, true)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform random value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// A uniform random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    ///
    /// Matches the generator family upstream `rand`'s `SmallRng` uses on
    /// 64-bit platforms. Not reproducible across `rand` versions — and
    /// this shim does not promise bit-compatibility with upstream either,
    /// only determinism per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }

    /// Alias: the workspace only needs `SmallRng`, but some call sites
    /// spell the default generator `StdRng`.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(0.25..1.5);
            assert!((0.25..1.5).contains(&x));
            let n: usize = rng.random_range(0..7);
            assert!(n < 7);
            let m: u64 = rng.random_range(3..=5);
            assert!((3..=5).contains(&m));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_integer_range_hits_both_ends() {
        let mut rng = SmallRng::seed_from_u64(2);
        let draws: Vec<u8> = (0..200).map(|_| rng.random_range(0..=1)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&1));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
