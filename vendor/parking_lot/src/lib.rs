//! Offline API-compatible subset of `parking_lot` (see vendor/README.md).
//!
//! Upstream `parking_lot` is a faster, poison-free reimplementation of the
//! std synchronization primitives. This shim provides the same *API shape*
//! over `std::sync`: `lock()` returns the guard directly (no `Result`), and
//! a poisoned std mutex is recovered rather than propagated — upstream has
//! no poisoning at all, so recovering is the API-faithful behavior.

use std::sync::PoisonError;

/// A mutex whose `lock` never fails (upstream `parking_lot::Mutex` API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Unlike
    /// `std::sync::Mutex`, never returns an error: upstream `parking_lot`
    /// has no lock poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }
}
