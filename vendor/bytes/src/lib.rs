//! Offline stand-in for the parts of the `bytes` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset (see `vendor/README.md`).
//! [`Bytes`] here is a plain owned buffer — no reference-counted
//! zero-copy slicing — which is all the wire codec needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// A readable byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics on underflow (as upstream does).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Fills `dst` from the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// A writable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }

    /// Appends a slice (mirror of the inherent method upstream has).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

// Upstream `bytes` lets callers compare against plain slices directly;
// the frame-codec tests rely on this.
impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_f64_le(), 1.5);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn split_to_divides_buffer() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"hello world");
        let head = buf.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&buf[..], b" world");
    }
}
