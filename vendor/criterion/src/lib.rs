//! Offline stand-in for the parts of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal wall-clock benchmarking harness with `criterion`'s
//! API shape (see `vendor/README.md`). It performs a short warm-up,
//! adaptively sizes iteration batches to a per-benchmark time budget,
//! and prints `name  median  (min .. max)` per-iteration times. There is
//! no statistical analysis, HTML report, or baseline comparison.
//!
//! Supported surface: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`criterion_group!`], [`criterion_main!`], and
//! [`black_box`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. This shim times each routine
/// call individually, so the variants only exist for API shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// One routine call per setup call.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Measurement settings shared by a benchmark run.
#[derive(Debug, Clone)]
struct Settings {
    /// Samples per benchmark (each sample times one adaptive batch).
    sample_count: usize,
    /// Wall-clock budget per benchmark.
    budget: Duration,
    /// Substring filter from the command line, if any.
    filter: Option<String>,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_count: 20,
            budget: Duration::from_millis(600),
            filter: None,
        }
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Reads the CLI filter (first free argument) like upstream does.
    /// Harness flags cargo passes (`--bench`, `--test`, …) are ignored.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Self {
            settings: Settings {
                filter,
                ..Settings::default()
            },
        }
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        run_benchmark(&self.settings, &id.into().id, &mut f);
        // Match upstream's spacing between top-level benchmarks.
        println!();
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample counts per group; the shim's adaptive batch
    /// sizing makes this a no-op kept for API shape.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&self.criterion.settings, &full, &mut f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&self.criterion.settings, &full, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        println!();
    }
}

/// Collects timed iterations for one benchmark.
pub struct Bencher {
    /// Iterations the routine should run this sample.
    iters: u64,
    /// Time the routine spent across those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(settings: &Settings, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(filter) = &settings.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    // Calibration pass: one iteration, to size batches for the budget.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let per_sample = settings.budget / settings.sample_count as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples = Vec::with_capacity(settings.sample_count);
    for _ in 0..settings.sample_count {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<40} time: [{} {} {}]  ({} iters/sample)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max),
        iters
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a benchmark group runner, like upstream's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_and_batched_inputs_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
            b.iter_batched(|| n, |v| calls += v, BatchSize::LargeInput)
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let settings = Settings {
            filter: Some("other".into()),
            ..Settings::default()
        };
        let mut ran = false;
        run_benchmark(&settings, "this_one", &mut |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
    }
}
