//! Offline stand-in for the parts of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with `proptest`'s API shape
//! (see `vendor/README.md`): the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, tuple/range/`Just`/[`prop_oneof!`]/collection/option/regex
//! strategies, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (which are printed before the failure is raised) but is not
//!   minimized.
//! * **Deterministic.** Cases derive from a fixed seed plus the test name,
//!   so runs are reproducible; `*.proptest-regressions` files are ignored.
//! * **Regex strategies** support only character-class-with-repetition
//!   patterns such as `"[a-z]{1,12}"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
pub use rand::rngs::SmallRng as TestRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the string describes it.
    Fail(String),
    /// The case asked to be discarded (unused by this shim's macros but
    /// kept for API shape).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from anything printable.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// The result type the body of a [`proptest!`] test evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; set via `#![proptest_config(...)]` inside
/// [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value generated.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy handle (the result of [`Strategy::boxed`]).
pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

/// Object-safe mirror of [`Strategy`], blanket-implemented for every
/// strategy; enables heterogeneous unions ([`prop_oneof!`]).
pub trait DynStrategy<T> {
    /// Draws one value.
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<T: Debug, S: Strategy<Value = T>> DynStrategy<T> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> T {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().dyn_generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + Debug> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform + Debug> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);
impl_strategy_for_tuple!(A, B, C, D, E, F, G);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H);

/// Character-class regex strategy: supports `[chars]{min,max}` (and the
/// degenerate `[chars]{n}` / bare `[chars]` forms) plus plain literal
/// strings. Enough for the workspace's `"[a-z]{1,12}"`-style patterns.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_simple_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let len = rng.random_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_simple_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next(); // the '-'
            if let Some(&end) = lookahead.peek() {
                chars = lookahead;
                chars.next();
                for x in c as u32..=end as u32 {
                    alphabet.extend(char::from_u32(x));
                }
                continue;
            }
        }
        alphabet.push(c);
    }
    if alphabet.is_empty() {
        return None;
    }
    let rep = &rest[close + 1..];
    if rep.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let rep = rep.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match rep.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, min, max))
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::*;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draws a value from the type's whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite full-range doubles; keeps downstream arithmetic sane.
            let v: f64 = rng.random();
            (v - 0.5) * 2.0 * 1e9
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::*;

    /// Acceptable size arguments for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            Self {
                min: lo,
                max_exclusive: hi + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.min < size.max_exclusive, "empty vec size range");
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::*;

    /// `None` one time in four, `Some(inner)` otherwise (upstream's
    /// default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.random_range(0..4usize) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// A uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].dyn_generate(rng)
    }
}

/// Uniformly picks one of the argument strategies each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strategy) as $crate::BoxedStrategy<_>),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[doc(hidden)]
pub fn __run_case<F: FnOnce() -> TestCaseResult + std::panic::UnwindSafe>(
    test_name: &str,
    case: u32,
    inputs: &str,
    body: F,
) {
    let outcome = std::panic::catch_unwind(body);
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(TestCaseError::Reject(_))) => {}
        Ok(Err(TestCaseError::Fail(msg))) => {
            panic!("proptest case {case} of `{test_name}` failed: {msg}\ninputs: {inputs}")
        }
        Err(payload) => {
            eprintln!("proptest case {case} of `{test_name}` panicked\ninputs: {inputs}");
            std::panic::resume_unwind(payload)
        }
    }
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> TestRng {
    // Stable per (test, case): deterministic runs, distinct streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15)
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::__case_rng(test_name, case);
                // Args may be arbitrary (irrefutable) patterns, so the
                // generated values are formatted as one tuple before being
                // destructured into the test's bindings.
                let __vals = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                let inputs = format!(
                    concat!("(", $(stringify!($arg), ", ",)+ ") = {:?}"),
                    &__vals
                );
                let ($($arg,)+) = __vals;
                $crate::__run_case(
                    test_name,
                    case,
                    &inputs,
                    ::std::panic::AssertUnwindSafe(move || -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    }),
                );
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// The `prop::` namespace (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(a in 0u32..10, (x, y) in (0.0..1.0, 5usize..9)) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((5..9).contains(&y));
        }

        #[test]
        fn vec_and_option(v in prop::collection::vec(any::<u8>(), 1..5),
                          o in crate::option::of(0u8..3)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            if let Some(n) = o {
                prop_assert!(n < 3);
            }
        }

        #[test]
        fn oneof_and_map(cap in prop_oneof![Just(1.0), Just(10.0), (2.0..4.0).prop_map(|x| x)]) {
            prop_assert!(cap == 1.0 || cap == 10.0 || (2.0..4.0).contains(&cap));
        }

        #[test]
        fn regex_strings(s in "[a-z]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn regex_parser_handles_classes() {
        let (alpha, lo, hi) = super::parse_simple_regex("[a-z]{1,12}").unwrap();
        assert_eq!(alpha.len(), 26);
        assert_eq!((lo, hi), (1, 12));
        let (alpha, lo, hi) = super::parse_simple_regex("[abc]").unwrap();
        assert_eq!(alpha, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (1, 1));
        assert!(super::parse_simple_regex("(unsupported)+").is_none());
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_reports() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
