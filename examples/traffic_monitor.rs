//! A metro traffic-information service on the simulated overlay.
//!
//! The paper's running example: "Inform me of the traffic around Exit 89
//! on I-85 in the next 30 minutes". Traffic cameras publish congestion
//! records along a highway; commuters hold standing subscriptions around
//! their exits and are notified when congestion reaches them; one-off
//! queries sample the current state.
//!
//! Everything runs message-by-message on the deterministic simulator —
//! the same protocol engine the live TCP deployment uses.
//!
//! ```text
//! cargo run --example traffic_monitor
//! ```

use geogrid::core::engine::sim::SimHarness;
use geogrid::core::engine::{ClientEvent, EngineConfig, EngineMode, Input};
use geogrid::core::service::{LocationQuery, LocationRecord, Subscription};
use geogrid::core::NodeId;
use geogrid::geometry::{Point, Region, Space};

fn main() {
    let space = Space::paper_evaluation();
    let mut harness = SimHarness::new(
        space,
        EngineConfig {
            mode: EngineMode::Basic,
            ..EngineConfig::default()
        },
        1,
    );

    // 12 proxies spread over the metro area.
    let coords = [
        (8.0, 8.0),
        (24.0, 8.0),
        (40.0, 8.0),
        (56.0, 8.0),
        (8.0, 24.0),
        (24.0, 24.0),
        (40.0, 24.0),
        (56.0, 24.0),
        (8.0, 48.0),
        (24.0, 48.0),
        (40.0, 48.0),
        (56.0, 48.0),
    ];
    harness.bootstrap(Point::new(coords[0].0, coords[0].1), 100.0);
    for &(x, y) in &coords[1..] {
        harness.join(Point::new(x, y), 100.0);
        harness.run_for(300);
    }
    harness.settle();
    println!(
        "overlay formed: {} proxies online, {} messages exchanged",
        harness.owner_count(),
        harness.stats().delivered
    );

    // The I-85 corridor: a diagonal of exits across the plane.
    let exits: Vec<Point> = (0..8)
        .map(|i| Point::new(6.0 + i as f64 * 7.0, 10.0 + i as f64 * 6.0))
        .collect();

    // A commuter (proxied by node 5) watches exit 4 for 30 minutes.
    let commuter = NodeId::new(5);
    let watched = exits[4];
    harness.inject(
        commuter,
        Input::UserSubscribe {
            sub: Subscription::new(
                89, // the paper's Exit 89
                Region::new(watched.x - 2.0, watched.y - 2.0, 4.0, 4.0),
                commuter,
                30 * 60 * 1_000, // 30 simulated minutes
            )
            .with_topic("traffic"),
        },
    );
    harness.run_for(500);

    // Rush hour: congestion crawls up the corridor; the camera proxy at
    // node 2 publishes a record per affected exit.
    let camera = NodeId::new(2);
    for (i, exit) in exits.iter().enumerate() {
        harness.inject(
            camera,
            Input::UserPublish {
                record: LocationRecord::new(
                    i as u64,
                    "traffic",
                    *exit,
                    format!("congestion level {}", 3 + i % 3).into_bytes(),
                ),
            },
        );
        harness.run_for(300);
    }

    // Did the commuter hear about their exit?
    let notifications: Vec<_> = harness
        .events_of(commuter)
        .iter()
        .filter_map(|e| match e {
            ClientEvent::Notified { record } => Some(record.clone()),
            _ => None,
        })
        .collect();
    println!(
        "commuter at node {commuter} got {} notification(s):",
        notifications.len()
    );
    for n in &notifications {
        println!(
            "  {} at {} -> {}",
            n.topic(),
            n.position(),
            String::from_utf8_lossy(n.payload())
        );
    }
    assert!(
        !notifications.is_empty(),
        "the subscribed exit was published but never matched"
    );

    // A one-off query over the middle of the corridor.
    let asker = NodeId::new(9);
    harness.inject(
        asker,
        Input::UserQuery {
            query: LocationQuery::new(Region::new(18.0, 18.0, 20.0, 20.0), asker)
                .with_topic("traffic"),
        },
    );
    harness.run_for(500);
    let results: usize = harness
        .events_of(asker)
        .iter()
        .map(|e| match e {
            ClientEvent::QueryResults { records, .. } => records.len(),
            _ => 0,
        })
        .sum();
    println!("ad-hoc corridor query returned {results} record(s)");
    println!(
        "total simulator traffic: {} messages, {} undeliverable",
        harness.stats().delivered,
        harness.stats().undeliverable
    );
}
