//! The paper's motivating scenario: a Super-Bowl-style parking hot spot.
//!
//! "During a sport event like Super bowl, parking lots close to the
//! stadium are usually fully loaded. More people will be interested in
//! finding a parking space that is closer to the stadium."
//!
//! A stadium sits at one corner of the metro area; game day creates a
//! circular query hot spot over it, then the crowd disperses and the hot
//! spot wanders. This example shows the dual-peer network absorbing the
//! surge through load-balance adaptation and reports the imbalance before
//! and after each phase.
//!
//! ```text
//! cargo run --example parking_hotspot
//! ```

use geogrid::core::balance::{AdaptationEngine, BalanceConfig};
use geogrid::core::builder::{Mode, NetworkBuilder};
use geogrid::core::load::LoadMap;
use geogrid::geometry::{Point, Space};
use geogrid::metrics::gini;
use geogrid::workload::{HotSpot, HotSpotField, WorkloadGrid};
use rand::SeedableRng;

fn report(label: &str, topo: &geogrid::core::Topology, loads: &LoadMap) {
    let s = loads.summary(topo);
    let g = gini(loads.node_indexes(topo).into_values());
    println!(
        "{label:<34} mean={:.3e}  std={:.3e}  max={:.3e}  gini={g:.3}",
        s.mean(),
        s.std_dev(),
        s.max()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = Space::paper_evaluation();
    let stadium = Point::new(52.0, 12.0);

    // A 2,000-proxy metro-area GeoGrid (dual peer).
    let mut net = NetworkBuilder::new(space, 2007)
        .mode(Mode::DualPeer)
        .build(2_000);
    println!(
        "metro network: {} proxies, {} regions\n",
        net.topology().node_count(),
        net.topology().region_count()
    );

    // Game day: a sharp parking hot spot around the stadium (the paper's
    // 1 - d/r decay), plus mild background interest elsewhere.
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2007);
    let mut field = HotSpotField::new(vec![
        HotSpot::new(stadium, 8.0),
        HotSpot::new(Point::new(20.0, 44.0), 3.0), // downtown background
    ]);
    let mut grid = WorkloadGrid::from_field(space, 0.5, &field);

    let mut loads = LoadMap::from_grid(net.topology(), &grid);
    report("kickoff (no adaptation yet):", net.topology(), &loads);

    // The overloaded proxies near the stadium adapt.
    let engine = AdaptationEngine::new(BalanceConfig::default());
    let rounds = engine.run(net.topology_mut(), &grid, &mut loads, 25);
    let ops: usize = rounds.iter().map(|r| r.adaptations).sum();
    report(
        &format!("after {ops} adaptations ({} rounds):", rounds.len()),
        net.topology(),
        &loads,
    );

    // Post-game: the crowd disperses — the hot spot migrates a few epochs
    // per adaptation round, faster than the overlay can chase it.
    println!("\npost-game dispersal (moving hot spot):");
    for round in 1..=6 {
        field.advance_epochs(&mut rng, space, 5);
        grid.fill(&field);
        let mut loads = LoadMap::from_grid(net.topology(), &grid);
        let applied = engine.run_round(net.topology_mut(), &grid, &mut loads);
        report(
            &format!("round {round} ({} adaptations):", applied.len()),
            net.topology(),
            &loads,
        );
    }

    net.topology().validate().map_err(std::io::Error::other)?;
    println!("\ntopology invariants hold after all adaptations.");
    Ok(())
}
