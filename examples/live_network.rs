//! A live GeoGrid overlay on real TCP sockets.
//!
//! Starts a bootstrap directory and six nodes on localhost, forms the
//! overlay through the directory (exactly the paper's three-step
//! bootstrap), publishes a location record, and queries it from the far
//! side of the network.
//!
//! ```text
//! cargo run --example live_network
//! ```

use std::time::Duration;

use geogrid::core::engine::{ClientEvent, EngineConfig, EngineMode};
use geogrid::core::service::{LocationQuery, LocationRecord};
use geogrid::core::NodeId;
use geogrid::geometry::{Point, Region, Space};
use geogrid::transport::{BootstrapClient, BootstrapServer, NodeRuntime, RuntimeConfig};

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        engine: EngineConfig {
            mode: EngineMode::DualPeer,
            heartbeat_interval: 100,
            peer_timeout: 400,
            neighbor_timeout: 2_000,
            max_hops: 64,
            ..EngineConfig::default()
        },
        listen: "127.0.0.1:0".parse().expect("literal"),
        tick_interval: Duration::from_millis(100),
    }
}

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let space = Space::paper_evaluation();

    // Step 0: the bootstrap directory.
    let server = BootstrapServer::bind("127.0.0.1:0".parse().expect("literal")).await?;
    let directory = BootstrapClient::new(server.local_addr());
    println!("bootstrap directory on {}", server.local_addr());

    // Step 1: the first node owns the whole space.
    let coords = [
        Point::new(10.0, 10.0),
        Point::new(54.0, 10.0),
        Point::new(10.0, 54.0),
        Point::new(54.0, 54.0),
        Point::new(32.0, 32.0),
        Point::new(20.0, 40.0),
    ];
    let capacities = [100.0, 10.0, 10.0, 1.0, 1000.0, 10.0];
    let mut nodes = Vec::new();
    for (i, (&coord, &cap)) in coords.iter().zip(&capacities).enumerate() {
        let handle =
            NodeRuntime::start(NodeId::new(i as u64), coord, cap, space, runtime_config()).await?;
        directory
            .register(handle.info().id(), handle.local_addr())
            .await?;
        nodes.push(handle);
    }
    nodes[0].bootstrap().await;
    tokio::time::sleep(Duration::from_millis(300)).await;

    // Steps 2-3: every other node fetches the directory and joins via the
    // first listed entry.
    for node in &nodes[1..] {
        let listing = directory.list().await?;
        let (entry_id, entry_addr) = listing[0];
        node.join(entry_id, entry_addr).await;
        tokio::time::sleep(Duration::from_millis(400)).await;
        println!(
            "node {} joined (region: {:?})",
            node.info().id(),
            node.owner_view().await.map(|v| v.region.to_string())
        );
    }

    // Publish a parking record near node 3's corner from node 1.
    let lot = Point::new(52.0, 52.0);
    nodes[1]
        .publish(
            LocationRecord::new(1, "parking", lot, b"23 spaces free".to_vec())
                .with_expiry(u64::MAX),
        )
        .await;
    tokio::time::sleep(Duration::from_millis(400)).await;

    // Query it from node 0, across the overlay.
    nodes[0]
        .query(LocationQuery::new(
            Region::new(lot.x - 2.0, lot.y - 2.0, 4.0, 4.0),
            nodes[0].info().id(),
        ))
        .await;
    let mut handle0 = nodes.remove(0);
    let mut found = false;
    for _ in 0..20 {
        match handle0.next_event_timeout(Duration::from_millis(500)).await {
            Some(ClientEvent::QueryResults { records, .. }) if !records.is_empty() => {
                println!(
                    "query answered: {} -> {}",
                    records[0].position(),
                    String::from_utf8_lossy(records[0].payload())
                );
                found = true;
                break;
            }
            Some(_) => continue,
            None => break,
        }
    }
    if !found {
        eprintln!("no results arrived (try rerunning; sockets may be slow)");
    }

    handle0.shutdown().await;
    for node in &nodes {
        node.shutdown().await;
    }
    println!("live overlay shut down cleanly");
    Ok(())
}
