//! Quickstart: build a GeoGrid, route queries, measure the overlay.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use geogrid::core::builder::{Mode, NetworkBuilder};
use geogrid::core::load::LoadMap;
use geogrid::core::routing::{RouteOptions, Router};
use geogrid::geometry::{Point, Space};
use geogrid::metrics::Summary;
use geogrid::workload::{HotSpotField, WorkloadGrid};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's evaluation plane: 64 x 64 miles.
    let space = Space::paper_evaluation();

    // 1. Build a 500-node dual-peer GeoGrid with the Gnutella-skewed
    //    capacity profile (the paper's Figure 3 network).
    let net = NetworkBuilder::new(space, 42)
        .mode(Mode::DualPeer)
        .build(500);
    let topo = net.topology();
    println!(
        "built a {}-node network partitioned into {} regions",
        topo.node_count(),
        topo.region_count()
    );

    // 2. Route a few location queries and observe the O(2*sqrt(N)) hops.
    //    One Router carries the next-hop cache across all three queries.
    let entry = topo.first_region()?;
    let mut router = Router::new();
    for target in [
        Point::new(5.0, 5.0),
        Point::new(60.0, 60.0),
        Point::new(32.0, 8.0),
    ] {
        let executor = router.route(topo, entry, target, &RouteOptions::greedy())?;
        println!(
            "query at {target}: {} hops to executor region {executor}",
            router.hop_count(),
        );
    }

    // 3. Drop a hot-spot workload on the plane and read the per-node
    //    workload index (the paper's central metric).
    let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
    let field = HotSpotField::random(&mut rng, space, 10);
    let grid = WorkloadGrid::from_field(space, 0.5, &field);
    let loads = LoadMap::from_grid(topo, &grid);
    let summary: Summary = loads.summary(topo);
    println!(
        "workload index over {} nodes: mean={:.2e} std={:.2e} max={:.2e}",
        summary.len(),
        summary.mean(),
        summary.std_dev(),
        summary.max()
    );
    Ok(())
}
